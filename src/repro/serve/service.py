"""`RankingService`: degradation-first serving over a live ranking.

The service decouples the two halves of a live scholarly index:

* **Read path** — many threads issue ``top``/``page``/``rank_of``
  against the current :class:`~repro.serve.snapshot.Snapshot`. The
  snapshot reference is swapped atomically, so a read never observes a
  half-built world; a bounded :class:`~repro.serve.admission.AdmissionGate`
  sheds excess load with a typed :class:`repro.errors.OverloadError`
  instead of queueing unboundedly; reads never block on updates.
* **Update path** — a single updater drives
  :class:`repro.engine.live.LiveRanker` batches. Every candidate
  ranking must pass the publish guardrails
  (:func:`~repro.serve.guardrails.validate_candidate`) before the swap;
  a vetoed or crashing batch rolls the engine back to the last good
  state and is quarantined
  (:class:`repro.data.quarantine.QuarantinedBatch`), while the previous
  snapshot keeps serving — stale but available. A
  :class:`~repro.serve.breaker.CircuitBreaker` stops a persistently
  failing update pipeline from being hammered; deferred batches are
  tracked as *batches behind* until the breaker's half-open probe
  recovers.

The degradation ladder, explicitly: **fresh** (updates publishing) →
**stale** (update path failing/open, last good snapshot serving) →
**shed** (read capacity exhausted, typed rejections). Each rung is
observable via :meth:`RankingService.health`.

The update path is an exception firewall by design: it catches *all*
exceptions from ``LiveRanker.apply`` (including injected test crashes)
— a poisoned batch must never take the read path down with it.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import nullcontext
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigError, ServeError
from repro.data.quarantine import QuarantinedBatch
from repro.query import RankEntry, RankIndex
from repro.resilience.policy import Deadline
from repro.serve.admission import AdmissionGate
from repro.serve.breaker import CircuitBreaker
from repro.serve.guardrails import GuardrailPolicy, validate_candidate
from repro.serve.snapshot import Snapshot

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.core.model import RankingResult
    from repro.engine.live import LiveRanker
    from repro.engine.updates import UpdateBatch
    from repro.obs.handle import Observability
    from repro.resilience.faults import FaultPlan


@dataclass(frozen=True)
class ReadResult:
    """Entries plus the freshness metadata every response carries."""

    entries: List[RankEntry]
    epoch: int
    batches_behind: int


@dataclass(frozen=True)
class IngestReport:
    """Outcome of one :meth:`RankingService.ingest` call."""

    #: "published" | "deferred" | "quarantined"
    status: str
    epoch: int
    batches_behind: int
    published: int
    quarantined: int
    breaker_state: str
    reasons: Tuple[str, ...] = ()


@dataclass
class _PendingBatch:
    index: int
    batch: "UpdateBatch"
    attempts: int = 0
    reasons: List[str] = field(default_factory=list)


class _EngineGuard:
    """Rollback token for one update attempt.

    ``LiveRanker.apply`` replaces (never mutates) the engine's state
    arrays, so capturing the references and restoring them on failure
    is an exact, O(1) rollback — even when the apply died halfway
    through and left the attributes mutually inconsistent.
    """

    _ENGINE_ATTRS = ("dataset", "graph", "years", "_edge_weights",
                     "scores", "_structure_cache")

    def __init__(self, live: "LiveRanker") -> None:
        self._live = live
        engine = live._engine
        self._engine_state = {name: getattr(engine, name)
                              for name in self._ENGINE_ATTRS}
        self._result = live._result
        self._batches_applied = live._batches_applied

    def restore(self) -> None:
        engine = self._live._engine
        for name, value in self._engine_state.items():
            setattr(engine, name, value)
        self._live._result = self._result
        self._live._batches_applied = self._batches_applied


class RankingService:
    """Owns the snapshot swap, the admission gate, and the breaker.

    Args:
        live: the bootstrapped :class:`LiveRanker` to serve and update.
        guardrails: publish-time validation policy.
        gate: read-path admission gate (default: 64 in flight, no
            waiting room).
        breaker: update-path circuit breaker.
        obs: optional observability handle (``serve.read`` /
            ``serve.publish`` / ``serve.breaker`` spans and
            ``repro_serve_*`` metrics).
        fault_plan: deterministic chaos hook — consult
            :class:`repro.resilience.FaultPlan` batch faults at the
            exact points a real feed fails.
        max_batch_attempts: apply attempts before a crash-looping batch
            is quarantined instead of retried.
        default_deadline: per-request budget used when a read carries
            none.
        trace_reads: open a ``serve.read`` span per read. The tracer is
            a single-threaded context stack, so enable this only for
            single-threaded use (the publish path is always traced —
            it has exactly one updater).
    """

    def __init__(self, live: "LiveRanker", *,
                 guardrails: Optional[GuardrailPolicy] = None,
                 gate: Optional[AdmissionGate] = None,
                 breaker: Optional[CircuitBreaker] = None,
                 obs: Optional["Observability"] = None,
                 fault_plan: Optional["FaultPlan"] = None,
                 max_batch_attempts: int = 3,
                 default_deadline: Optional[Deadline] = None,
                 trace_reads: bool = False) -> None:
        if max_batch_attempts <= 0:
            raise ConfigError(
                f"max_batch_attempts must be positive, "
                f"got {max_batch_attempts}")
        self._live = live
        self._guardrails = guardrails if guardrails is not None \
            else GuardrailPolicy()
        self._gate = gate if gate is not None else AdmissionGate()
        self._breaker = breaker if breaker is not None \
            else CircuitBreaker(obs=obs)
        self._obs = obs
        self._fault_plan = fault_plan
        self._max_batch_attempts = max_batch_attempts
        self._default_deadline = default_deadline
        self._trace_reads = trace_reads

        self._pending: Deque[_PendingBatch] = deque()
        self._next_batch_index = 0
        self._quarantined: List[QuarantinedBatch] = []
        self._publishes_total = 0
        self._update_failures_total = 0
        self._stats_lock = threading.Lock()

        bootstrap = live.result
        violations = validate_candidate(self._guardrails, live.dataset,
                                        bootstrap, previous=None)
        if violations:
            raise ServeError(
                "bootstrap ranking failed publish guardrails: "
                + "; ".join(violations))
        self._snapshot = Snapshot(
            index=RankIndex(live.dataset, bootstrap.by_id()),
            ranking=bootstrap, epoch=0,
            batches_applied=live.batches_applied,
            published_at=time.time())
        self._set_stale_gauge()

    # ------------------------------------------------------------------
    # read path

    def snapshot(self) -> Snapshot:
        """The current snapshot (no admission control — monitoring use)."""
        return self._snapshot

    def _count_request(self, outcome: str) -> None:
        if self._obs is None:
            return
        with self._stats_lock:
            self._obs.metrics.counter(
                "repro_serve_requests_total",
                "Read requests by outcome.",
                labels=("outcome",)).inc(outcome=outcome)
            if outcome == "shed":
                self._obs.metrics.counter(
                    "repro_serve_shed_total",
                    "Read requests shed by the admission gate.").inc()

    def read_session(self, deadline: Optional[Deadline] = None):
        """Admission-controlled access to one consistent snapshot.

        ``with service.read_session() as snap:`` holds one in-flight
        slot for the block and yields an immutable snapshot — every
        query inside the block sees the same epoch.
        """
        return _ReadSession(self, deadline)

    def top(self, k: int = 10, venue_id: Optional[int] = None,
            author_id: Optional[int] = None,
            year_range: Optional[Tuple[int, int]] = None,
            deadline: Optional[Deadline] = None) -> ReadResult:
        """Best ``k`` (optionally filtered) from the current snapshot."""
        with self.read_session(deadline) as snap:
            entries = snap.index.top(k, venue_id=venue_id,
                                     author_id=author_id,
                                     year_range=year_range)
            return self._read_result(snap, entries)

    def page(self, offset: int, limit: int,
             deadline: Optional[Deadline] = None) -> ReadResult:
        """Global ranking slice from the current snapshot."""
        with self.read_session(deadline) as snap:
            return self._read_result(snap, snap.index.page(offset, limit))

    def rank_of(self, article_id: int,
                deadline: Optional[Deadline] = None) -> int:
        """1-based global rank of one article in the current snapshot."""
        with self.read_session(deadline) as snap:
            return snap.index.rank_of(article_id)

    def _read_result(self, snap: Snapshot,
                     entries: List[RankEntry]) -> ReadResult:
        return ReadResult(entries=entries, epoch=snap.epoch,
                          batches_behind=len(self._pending))

    # ------------------------------------------------------------------
    # update path (single updater)

    def ingest(self, batch: "UpdateBatch") -> IngestReport:
        """Accept one arrival batch and pump the update pipeline.

        The batch is appended to the pending queue, then as many
        pending batches as the breaker allows are applied, validated,
        and published. Returns what happened to *this* call's pipeline
        pass; the batch itself may have been published, deferred
        (breaker open), or quarantined.
        """
        entry = _PendingBatch(index=self._next_batch_index, batch=batch)
        self._next_batch_index += 1
        self._pending.append(entry)
        self._set_stale_gauge()
        published, quarantined = self.pump()
        # The queue drains head-first and this batch went in last, so a
        # non-empty queue still contains it.
        status = "deferred" if self._pending else "published"
        reasons: Tuple[str, ...] = ()
        for record in self._quarantined[-quarantined:] if quarantined \
                else ():
            if record.index == entry.index:
                status = "quarantined"
                reasons = record.reasons
        return IngestReport(
            status=status, epoch=self._snapshot.epoch,
            batches_behind=len(self._pending), published=published,
            quarantined=quarantined,
            breaker_state=self._breaker.state, reasons=reasons)

    def pump(self) -> Tuple[int, int]:
        """Drain pending batches while the breaker allows.

        Returns ``(published, quarantined)`` counts for this pass.
        Call it again after a cooldown to let the half-open probe
        through (``ingest`` pumps automatically).
        """
        published = 0
        quarantined = 0
        while self._pending and self._breaker.allow():
            entry = self._pending[0]
            outcome = self._attempt(entry)
            if outcome == "published":
                self._pending.popleft()
                published += 1
            elif outcome == "quarantined":
                self._pending.popleft()
                quarantined += 1
            # "failed": the entry stays queued; the loop exits when the
            # breaker trips, otherwise the next iteration retries.
        self._set_stale_gauge()
        return published, quarantined

    def _attempt(self, entry: _PendingBatch) -> str:
        """One apply+validate+publish attempt for the head batch."""
        live = self._live
        guard = _EngineGuard(live)
        attempt = entry.attempts
        entry.attempts += 1
        span = self._obs.span("serve.publish", batch=entry.index,
                              attempt=attempt) \
            if self._obs is not None else nullcontext()
        with span:
            try:
                if self._fault_plan is not None:
                    self._fault_plan.fire_batch_crash(entry.index,
                                                      attempt)
                result, _ = live.apply(entry.batch)
                fault = self._fault_plan.batch_fault(
                    entry.index, attempt) \
                    if self._fault_plan is not None else None
                if fault is not None and fault.kind == "nan":
                    poisoned = np.asarray(result.scores,
                                          dtype=np.float64).copy()
                    poisoned[:: max(1, len(poisoned) // 7)] = np.nan
                    result = replace(result, scores=poisoned)
            except Exception as exc:  # noqa: BLE001 - exception firewall
                guard.restore()
                self._record_update_failure()
                entry.reasons.append(
                    f"update path raised {type(exc).__name__}: {exc}")
                self._breaker.record_failure()
                if entry.attempts >= self._max_batch_attempts:
                    self._quarantine(entry)
                    return "quarantined"
                return "failed"

            violations = validate_candidate(
                self._guardrails, live.dataset, result,
                previous=self._snapshot)
            if violations:
                guard.restore()
                self._record_update_failure()
                entry.reasons.extend(violations)
                self._breaker.record_failure()
                # Bad data is deterministic: retrying cannot fix it.
                self._quarantine(entry)
                return "quarantined"

            self._publish(result)
            self._breaker.record_success()
            self._observe_publish_freshness(entry.batch)
            return "published"

    def _publish(self, result: "RankingResult") -> None:
        live = self._live
        snapshot = Snapshot(
            index=RankIndex(live.dataset, result.by_id()),
            ranking=result, epoch=self._snapshot.epoch + 1,
            batches_applied=live.batches_applied,
            published_at=time.time())
        # One reference store: readers see either the old or the new
        # complete snapshot.
        self._snapshot = snapshot
        self._publishes_total += 1
        if self._obs is not None:
            self._obs.metrics.counter(
                "repro_serve_publishes_total",
                "Snapshots published (guardrails passed).").inc()

    def _observe_publish_freshness(self, batch: "UpdateBatch") -> None:
        """Arrival→publish wall-clock seconds for a provenance-stamped
        batch (``stage="publish"``): the records are now visible to
        every service reader."""
        if self._obs is None:
            return
        provenance = getattr(batch, "provenance", None)
        if provenance is None or not provenance.arrivals:
            return
        from repro.obs.metrics import (FRESHNESS_BUCKETS, FRESHNESS_HELP,
                                       FRESHNESS_METRIC)

        freshness = self._obs.metrics.histogram(
            FRESHNESS_METRIC, FRESHNESS_HELP,
            buckets=FRESHNESS_BUCKETS, labels=("stage",))
        now = time.time()
        for arrived_wall in provenance.arrivals:
            if arrived_wall > 0.0:
                freshness.observe(max(0.0, now - arrived_wall),
                                  stage="publish")

    def _quarantine(self, entry: _PendingBatch) -> None:
        record = QuarantinedBatch(
            index=entry.index, reasons=tuple(entry.reasons),
            attempts=entry.attempts,
            num_articles=entry.batch.num_articles,
            num_citations=entry.batch.num_citations,
            batch=entry.batch)
        self._quarantined.append(record)
        if self._obs is not None:
            self._obs.metrics.counter(
                "repro_serve_quarantined_total",
                "Update batches quarantined by the publish "
                "guardrails or crash-loop cap.").inc()
            self._obs.event("serve.quarantine", batch=entry.index,
                            reasons="; ".join(entry.reasons))

    def _record_update_failure(self) -> None:
        self._update_failures_total += 1
        if self._obs is not None:
            self._obs.metrics.counter(
                "repro_serve_update_failures_total",
                "Failed update attempts (crash or guardrail veto).").inc()

    def _set_stale_gauge(self) -> None:
        if self._obs is not None:
            self._obs.metrics.gauge(
                "repro_serve_stale_batches",
                "Accepted batches not yet reflected in the published "
                "snapshot.").set(len(self._pending))

    # ------------------------------------------------------------------
    # health

    @property
    def quarantined(self) -> List[QuarantinedBatch]:
        """Quarantined batches, oldest first (triage queue)."""
        return list(self._quarantined)

    def batches_behind(self) -> int:
        """Accepted batches the published snapshot does not reflect."""
        return len(self._pending)

    def health(self) -> Dict[str, object]:
        """Full health report: the degradation ladder made observable."""
        snap = self._snapshot
        breaker_state = self._breaker.state
        behind = len(self._pending)
        if breaker_state == "closed" and behind == 0:
            status = "fresh"
        else:
            status = "stale"
        return {
            "status": status,
            "epoch": snap.epoch,
            "batches_applied": snap.batches_applied,
            "batches_behind": behind,
            "published_at": snap.published_at,
            "breaker": breaker_state,
            "breaker_opened_total": self._breaker.opened_total,
            "breaker_cooldown_remaining":
                self._breaker.cooldown_remaining,
            "requests_admitted_total": self._gate.admitted_total,
            "requests_shed_total": self._gate.shed_total,
            "publishes_total": self._publishes_total,
            "update_failures_total": self._update_failures_total,
            "quarantined_total": len(self._quarantined),
        }

    def readiness(self) -> Dict[str, object]:
        """Can this process take traffic, and at which rung?

        ``ready`` is true whenever a validated snapshot exists — a
        stale snapshot still serves (that is the point). ``degraded``
        flags the stale rung so orchestration can alert without
        draining traffic.
        """
        behind = len(self._pending)
        breaker_state = self._breaker.state
        degraded = behind > 0 or breaker_state != "closed"
        return {
            "ready": True,
            "degraded": degraded,
            "epoch": self._snapshot.epoch,
            "batches_behind": behind,
            "breaker": breaker_state,
        }


class _ReadSession:
    """Context manager pairing admission with one snapshot reference."""

    def __init__(self, service: RankingService,
                 deadline: Optional[Deadline]) -> None:
        self._service = service
        self._deadline = deadline if deadline is not None \
            else service._default_deadline
        self._admission = None
        self._span = None
        self._started = 0.0

    def __enter__(self) -> Snapshot:
        service = self._service
        try:
            self._admission = service._gate.admit(self._deadline)
            self._admission.__enter__()
        except Exception:
            service._count_request("shed")
            raise
        service._count_request("served")
        # Clock starts after admission: the latency SLO measures the
        # work done for admitted reads, not time spent queueing to be
        # shed.
        self._started = time.perf_counter()
        if service._obs is not None and service._trace_reads:
            self._span = service._obs.span(
                "serve.read", epoch=service._snapshot.epoch)
            self._span.__enter__()
        return service._snapshot

    def __exit__(self, *exc_info) -> None:
        if self._span is not None:
            self._span.__exit__(*exc_info)
        service = self._service
        if self._admission is not None:
            self._admission.__exit__(*exc_info)
            if service._obs is not None:
                elapsed = time.perf_counter() - self._started
                with service._stats_lock:
                    service._obs.metrics.histogram(
                        "repro_serve_read_latency_seconds",
                        "Wall-clock duration of admitted read "
                        "sessions.").observe(elapsed)
