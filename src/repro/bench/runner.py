"""Experiment logging: collect rendered tables and persist them.

Benchmarks print their tables to stdout *and* append them to an
:class:`ExperimentLog`, so a single run can be archived next to
EXPERIMENTS.md (``bench_output.txt`` is the canonical artifact).

:class:`PerfArtifact` is the machine-readable sibling: every
``bench_e*`` script can record its measured numbers (one labelled
record per table row) and save them as a ``BENCH_<NAME>.json`` file —
the perf trajectory the repo tracks across commits. Artifacts embed
host/python/time provenance via :mod:`repro.obs.report` so two runs
can be compared honestly.
"""

from __future__ import annotations

import datetime
import platform
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.obs.report import RunReport

PathLike = Union[str, Path]


class ExperimentLog:
    """Accumulates rendered experiment blocks and writes them to a file."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.blocks: List[str] = []

    def add(self, block: str, echo: bool = True) -> None:
        """Record one rendered table/series; echo to stdout by default."""
        self.blocks.append(block)
        if echo:
            print("\n" + block)

    def header(self) -> str:
        """Provenance header: platform and timestamp."""
        stamp = datetime.datetime.now().isoformat(timespec="seconds")
        return (f"# {self.name}\n"
                f"# host: {platform.platform()} "
                f"python {platform.python_version()}\n"
                f"# time: {stamp}")

    def render(self) -> str:
        return "\n\n".join([self.header()] + self.blocks)

    def save(self, path: Optional[PathLike] = None) -> Path:
        """Write the log (default: ``<name>.log`` in the cwd)."""
        target = Path(path) if path is not None else Path(f"{self.name}.log")
        target.write_text(self.render() + "\n", encoding="utf-8")
        return target


class PerfArtifact:
    """Machine-readable perf numbers of one benchmark run.

    Usage in a ``bench_e*`` script::

        artifact = PerfArtifact("E4")
        for size, comparison in zip(SIZES, comparisons):
            artifact.record("solver_scaling", num_nodes=size,
                            naive_seconds=..., optimized_seconds=...)
        artifact.save()          # -> BENCH_E4.json

    Records are flat dicts (numbers/strings only) grouped under a
    label, so downstream tooling can diff one metric across commits
    without parsing rendered tables.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.records: List[Dict[str, object]] = []

    def record(self, label: str, **metrics) -> Dict[str, object]:
        """Append one labelled measurement record."""
        entry: Dict[str, object] = {"label": label}
        entry.update(metrics)
        self.records.append(entry)
        return entry

    def filename(self) -> str:
        return f"BENCH_{self.name.upper()}.json"

    def to_report(self) -> RunReport:
        """The artifact as a provenance-stamped :class:`RunReport`."""
        report = RunReport(self.name)
        report.record_metric("records", list(self.records))
        return report

    def save(self, directory: Optional[PathLike] = None) -> Path:
        """Write ``BENCH_<NAME>.json`` (default: current directory)."""
        base = Path(directory) if directory is not None else Path(".")
        return self.to_report().save(base / self.filename())
