"""Experiment logging: collect rendered tables and persist them.

Benchmarks print their tables to stdout *and* append them to an
:class:`ExperimentLog`, so a single run can be archived next to
EXPERIMENTS.md (``bench_output.txt`` is the canonical artifact).
"""

from __future__ import annotations

import datetime
import platform
from pathlib import Path
from typing import List, Optional, Union

PathLike = Union[str, Path]


class ExperimentLog:
    """Accumulates rendered experiment blocks and writes them to a file."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.blocks: List[str] = []

    def add(self, block: str, echo: bool = True) -> None:
        """Record one rendered table/series; echo to stdout by default."""
        self.blocks.append(block)
        if echo:
            print("\n" + block)

    def header(self) -> str:
        """Provenance header: platform and timestamp."""
        stamp = datetime.datetime.now().isoformat(timespec="seconds")
        return (f"# {self.name}\n"
                f"# host: {platform.platform()} "
                f"python {platform.python_version()}\n"
                f"# time: {stamp}")

    def render(self) -> str:
        return "\n\n".join([self.header()] + self.blocks)

    def save(self, path: Optional[PathLike] = None) -> Path:
        """Write the log (default: ``<name>.log`` in the cwd)."""
        target = Path(path) if path is not None else Path(f"{self.name}.log")
        target.write_text(self.render() + "\n", encoding="utf-8")
        return target
