"""Shared benchmark harness: workloads, table rendering, run recording."""

from repro.bench.tables import render_series, render_table
from repro.bench.runner import ExperimentLog, PerfArtifact
from repro.bench.workloads import (
    aminer_small,
    compute_baseline_scores,
    mag_small,
    sized_citation_graph,
)

__all__ = [
    "ExperimentLog",
    "PerfArtifact",
    "aminer_small",
    "compute_baseline_scores",
    "mag_small",
    "render_series",
    "render_table",
    "sized_citation_graph",
]
