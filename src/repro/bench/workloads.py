"""Canonical benchmark workloads.

The two effectiveness corpora mirror the paper's AMiner and MAG datasets
at laptop scale (see DESIGN.md "Substitutions"); they are module-cached
because several benchmarks share them. ``sized_citation_graph`` builds
the graph-size sweep of the efficiency experiments.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Tuple

import numpy as np

from repro.data.generator import (
    GeneratorConfig,
    aminer_like_config,
    generate_dataset,
    mag_like_config,
)
from repro.data.ground_truth import GroundTruth, build_ground_truth
from repro.data.schema import ScholarlyDataset
from repro.core.model import ArticleRanker
from repro.graph.csr import CSRGraph
from repro.ranking import (
    citation_count,
    citation_rate,
    citerank,
    futurerank,
    hits,
    pagerank,
    prank,
    rescaled_pagerank,
)


@lru_cache(maxsize=None)
def aminer_small(scale: int = 20_000
                 ) -> Tuple[ScholarlyDataset, GroundTruth]:
    """AMiner-like corpus + ground truth (cached)."""
    dataset = generate_dataset(aminer_like_config(scale=scale))
    truth = build_ground_truth(dataset, num_pairs=2_000, seed=13)
    return dataset, truth


@lru_cache(maxsize=None)
def mag_small(scale: int = 40_000
              ) -> Tuple[ScholarlyDataset, GroundTruth]:
    """MAG-like corpus + ground truth (cached)."""
    dataset = generate_dataset(mag_like_config(scale=scale))
    truth = build_ground_truth(dataset, num_pairs=2_000, seed=17)
    return dataset, truth


@lru_cache(maxsize=None)
def sized_citation_graph(num_articles: int, seed: int = 23
                         ) -> Tuple[CSRGraph, np.ndarray]:
    """A citation graph of the requested size for efficiency sweeps."""
    config = GeneratorConfig(
        num_articles=num_articles,
        num_venues=max(20, num_articles // 500),
        num_authors=max(100, num_articles // 4),
        seed=seed,
    )
    dataset = generate_dataset(config)
    graph = dataset.citation_csr()
    return graph, dataset.article_years(graph)


def compute_baseline_scores(dataset: ScholarlyDataset
                            ) -> Dict[str, Dict[int, float]]:
    """Every comparison method's scores, keyed by method name.

    Methods: the paper's full model (``QISAR``), its prestige component
    alone (``TWPR``), and the baselines PageRank, citation count,
    citation rate, CiteRank, FutureRank, HITS authority, P-Rank
    (heterogeneous co-ranking) and Rescaled PageRank (age-normalized).
    """
    graph = dataset.citation_csr()
    years = dataset.article_years(graph)
    observation = int(years.max())
    ids = [int(i) for i in graph.node_ids]

    def by_id(vector: np.ndarray) -> Dict[int, float]:
        return {article_id: float(score)
                for article_id, score in zip(ids, vector)}

    ranker = ArticleRanker()
    full = ranker.rank(dataset)

    author_index = {a: i for i, a in enumerate(sorted(dataset.authors))}
    author_lists = [
        [author_index[a] for a in dataset.articles[article_id].author_ids]
        for article_id in ids
    ]
    future_scores, _ = futurerank(graph, author_lists, len(author_index),
                                  years, observation)

    venue_index = {v: i for i, v in enumerate(sorted(dataset.venues))}
    venue_of = np.asarray(
        [venue_index.get(dataset.articles[article_id].venue_id, -1)
         for article_id in ids], dtype=np.int64)
    prank_scores, _, _ = prank(graph, author_lists, len(author_index),
                               venue_of, max(len(venue_index), 1))

    return {
        "QISAR": full.by_id(),
        "TWPR": by_id(full.components["article_prestige"]),
        "PageRank": by_id(pagerank(graph).scores),
        "CitationCount": by_id(citation_count(graph)),
        "CitationRate": by_id(citation_rate(graph, years, observation)),
        "CiteRank": by_id(citerank(graph, years, observation).scores),
        "FutureRank": by_id(future_scores),
        "HITS": by_id(hits(graph).authorities),
        "PRank": by_id(prank_scores),
        "RescaledPR": by_id(rescaled_pagerank(graph, years)),
    }
