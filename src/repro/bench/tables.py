"""Plain-text table and series rendering for benchmark output.

Every benchmark prints its table/figure through these helpers so the
output of ``pytest benchmarks/ --benchmark-only`` reads like the paper's
tables: a caption, aligned columns, one row per method or sweep point.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from repro.errors import ConfigError


def render_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned ASCII table with a caption line."""
    if not headers:
        raise ConfigError("table needs at least one column")
    cells = [[str(value) for value in row] for row in rows]
    for row in cells:
        if len(row) != len(headers):
            raise ConfigError(
                f"row width {len(row)} != header width {len(headers)}")
    widths = [len(header) for header in headers]
    for row in cells:
        for column, value in enumerate(row):
            widths[column] = max(widths[column], len(value))

    def line(values: Sequence[str]) -> str:
        return "  ".join(value.ljust(widths[column])
                         for column, value in enumerate(values)).rstrip()

    separator = "  ".join("-" * width for width in widths)
    body = [line(row) for row in cells]
    return "\n".join([title, line(list(headers)), separator] + body)


def render_rows(title: str, rows: Sequence[Mapping[str, object]]) -> str:
    """Render dict rows (shared keys become columns, in first-row order)."""
    if not rows:
        raise ConfigError("need at least one row")
    headers = list(rows[0].keys())
    return render_table(title, headers,
                        [[row.get(header, "") for header in headers]
                         for row in rows])


def render_series(title: str, x_label: str, x_values: Sequence[object],
                  series: Dict[str, Sequence[object]]) -> str:
    """Render a "figure" as a table: one x column, one column per line."""
    if not series:
        raise ConfigError("need at least one series")
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ConfigError(f"series {name!r} does not align with x")
    headers = [x_label] + list(series.keys())
    rows: List[List[object]] = []
    for position, x in enumerate(x_values):
        rows.append([x] + [series[name][position] for name in series])
    return render_table(title, headers, rows)
