"""Exception hierarchy for the :mod:`repro` library.

Every error deliberately raised by the library derives from
:class:`ReproError`, so callers can catch one type at the API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Structural problem with a graph (bad node id, duplicate edge, ...)."""


class NodeNotFoundError(GraphError):
    """A referenced node id does not exist in the graph."""

    def __init__(self, node: int) -> None:
        super().__init__(f"node {node!r} not found in graph")
        self.node = node


class EdgeNotFoundError(GraphError):
    """A referenced edge does not exist in the graph."""

    def __init__(self, src: int, dst: int) -> None:
        super().__init__(f"edge {src!r} -> {dst!r} not found in graph")
        self.src = src
        self.dst = dst


class ConvergenceError(ReproError):
    """An iterative solver failed to converge within its iteration budget."""

    def __init__(self, message: str, iterations: int, residual: float) -> None:
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class DatasetError(ReproError):
    """A dataset is malformed or internally inconsistent."""


class ParseError(DatasetError):
    """A dataset file could not be parsed.

    Carries the offending location so error messages point at the line.
    """

    def __init__(self, message: str, path: str = "", line: int = 0) -> None:
        location = f"{path}:{line}: " if path else ""
        super().__init__(f"{location}{message}")
        self.path = path
        self.line = line


class StorageError(ReproError):
    """The persistent store rejected an operation."""


class ConfigError(ReproError):
    """Invalid configuration value for a model or engine."""


class ServeError(ReproError):
    """The serving layer could not satisfy a request or publish."""


class OverloadError(ServeError):
    """A read request was shed by the admission gate.

    Raised instead of queueing unboundedly: the caller is expected to
    back off (or retry against another replica). Carries the gate
    occupancy observed at shed time.
    """

    def __init__(self, message: str, inflight: int = 0,
                 capacity: int = 0) -> None:
        super().__init__(message)
        self.inflight = inflight
        self.capacity = capacity


class ShardUnavailableError(ServeError):
    """A serving shard could not answer (dead worker, hung pipe).

    The gateway treats this per shard: the query is answered from the
    remaining shards and the failure is surfaced through ``health()``
    instead of failing the whole request. Carries the shard id.
    """

    def __init__(self, message: str, shard: int = -1) -> None:
        super().__init__(message)
        self.shard = shard


class PartitionError(ReproError):
    """A graph partition is invalid (uncovered nodes, overlap, bad count)."""


class IngestError(ReproError):
    """The streaming ingestion pipeline could not make progress."""


class SourceError(IngestError):
    """A record source failed transiently (flaky fetch, timeout).

    The ingest pipeline retries these under its
    :class:`repro.resilience.RetryPolicy`; only an exhausted retry
    budget surfaces the error to the caller. Carries the source
    position so operators can resume or skip deliberately.
    """

    def __init__(self, message: str, position: int = -1) -> None:
        super().__init__(message)
        self.position = position
