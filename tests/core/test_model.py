"""Assembled model tests."""

import numpy as np
import pytest
from scipy.stats import spearmanr

from repro.errors import ConfigError, DatasetError
from repro.core.model import ArticleRanker, RankerConfig
from repro.data.schema import ScholarlyDataset
from repro.ranking.citation_count import citation_count


class TestRankerConfig:
    @pytest.mark.parametrize("kwargs", [
        {"prestige_decay": -0.1},
        {"popularity_decay": -1.0},
        {"theta": 1.5},
        {"weight_article": -0.1},
        {"weight_article": 0, "weight_venue": 0, "weight_author": 0},
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            RankerConfig(**kwargs)

    def test_blend_weights_normalized(self):
        config = RankerConfig(weight_article=2, weight_venue=1,
                              weight_author=1)
        assert config.blend_weights() == (0.5, 0.25, 0.25)

    def test_with_config_override(self):
        ranker = ArticleRanker().with_config(theta=0.9)
        assert ranker.config.theta == 0.9
        assert ranker.config.damping == 0.85


class TestRank:
    @pytest.fixture(scope="class")
    def result(self, small_dataset):
        return ArticleRanker().rank(small_dataset)

    def test_scores_cover_all_articles(self, result, small_dataset):
        assert len(result.scores) == small_dataset.num_articles
        assert set(result.by_id()) == set(small_dataset.articles)

    def test_components_present_and_aligned(self, result, small_dataset):
        expected = {"article_prestige", "article_popularity",
                    "article_importance", "venue_feature",
                    "author_feature"}
        assert set(result.components) == expected
        for vector in result.components.values():
            assert len(vector) == small_dataset.num_articles

    def test_diagnostics(self, result):
        diag = result.diagnostics
        assert diag["twpr_converged"]
        assert diag["twpr_method"] == "levels"
        assert set(diag["timings"]) == {
            "build_graph", "article_prestige", "article_popularity",
            "venue", "author", "assembly"}

    def test_top_k(self, result):
        top = result.top(5)
        assert len(top) == 5
        scores = [s for _, s in top]
        assert scores == sorted(scores, reverse=True)
        with pytest.raises(ConfigError):
            result.top(0)

    def test_deterministic(self, small_dataset, result):
        again = ArticleRanker().rank(small_dataset)
        assert np.array_equal(again.scores, result.scores)

    def test_beats_citation_count_on_quality(self, small_dataset, result):
        graph = small_dataset.citation_csr()
        quality = small_dataset.article_qualities(graph)
        model_rho = spearmanr(quality, result.scores).statistic
        count_rho = spearmanr(quality, citation_count(graph)).statistic
        assert model_rho > count_rho


class TestConfigEffects:
    def test_prestige_only_vs_popularity_only(self, small_dataset):
        prestige_only = ArticleRanker(RankerConfig(
            theta=1.0, weight_venue=0, weight_author=0,
            weight_article=1)).rank(small_dataset)
        popularity_only = ArticleRanker(RankerConfig(
            theta=0.0, weight_venue=0, weight_author=0,
            weight_article=1)).rank(small_dataset)
        assert not np.allclose(prestige_only.scores,
                               popularity_only.scores)

    def test_venue_only_blend_follows_venue_feature(self, small_dataset):
        result = ArticleRanker(RankerConfig(
            weight_article=0, weight_venue=1,
            weight_author=0)).rank(small_dataset)
        venue_rho = spearmanr(result.scores,
                              result.components["venue_feature"]).statistic
        assert venue_rho > 0.999

    def test_observation_year_must_cover_dataset(self, small_dataset):
        _, max_year = small_dataset.year_range()
        ranker = ArticleRanker(RankerConfig(observation_year=max_year - 1))
        with pytest.raises(ConfigError):
            ranker.rank(small_dataset)

    def test_later_observation_year_allowed(self, small_dataset):
        _, max_year = small_dataset.year_range()
        ranker = ArticleRanker(RankerConfig(
            observation_year=max_year + 3))
        result = ranker.rank(small_dataset)
        assert len(result.scores) == small_dataset.num_articles

    def test_empty_dataset_rejected(self):
        with pytest.raises(DatasetError):
            ArticleRanker().rank(ScholarlyDataset())

    def test_tiny_dataset(self, tiny_dataset):
        result = ArticleRanker().rank(tiny_dataset)
        assert len(result.scores) == 5
        # The foundational, heavily-cited, top-venue article 0 must not
        # rank last despite its age.
        ranked = [article_id for article_id, _ in result.top(5)]
        assert ranked.index(0) < 4
