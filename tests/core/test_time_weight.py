"""Time-decay kernel tests."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.core.time_weight import exponential_decay, linear_decay, no_decay


class TestExponential:
    def test_gap_zero_is_one(self):
        decay = exponential_decay(0.3)
        assert decay(np.array([0.0]))[0] == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        decay = exponential_decay(0.3)
        gaps = np.arange(0.0, 20.0)
        values = decay(gaps)
        assert (np.diff(values) < 0).all()
        assert (values > 0).all()

    def test_known_value(self):
        decay = exponential_decay(0.5)
        assert decay(np.array([2.0]))[0] == pytest.approx(np.exp(-1.0))

    def test_negative_gap_clamped(self):
        decay = exponential_decay(0.5)
        assert decay(np.array([-3.0]))[0] == pytest.approx(1.0)

    def test_zero_rate_is_constant(self):
        decay = exponential_decay(0.0)
        assert np.allclose(decay(np.array([0.0, 5.0, 50.0])), 1.0)

    def test_negative_rate_rejected(self):
        with pytest.raises(ConfigError):
            exponential_decay(-0.1)


class TestLinear:
    def test_fades_to_floor(self):
        decay = linear_decay(horizon=10.0, floor=0.1)
        assert decay(np.array([0.0]))[0] == pytest.approx(1.0)
        assert decay(np.array([10.0]))[0] == pytest.approx(0.1)
        assert decay(np.array([100.0]))[0] == pytest.approx(0.1)

    def test_midpoint(self):
        decay = linear_decay(horizon=10.0, floor=0.0)
        assert decay(np.array([5.0]))[0] == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ConfigError):
            linear_decay(horizon=0)
        with pytest.raises(ConfigError):
            linear_decay(floor=1.5)


class TestNoDecay:
    def test_constant_one(self):
        decay = no_decay()
        assert np.allclose(decay(np.array([0.0, 3.0, 300.0])), 1.0)
