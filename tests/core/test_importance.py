"""Score normalization and prestige/popularity combination tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.core.importance import combine_importance, normalize_scores

positive_vectors = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    min_size=1, max_size=30).map(np.array)


class TestNormalize:
    def test_sum(self):
        out = normalize_scores(np.array([1.0, 3.0]), "sum")
        assert out.tolist() == [0.25, 0.75]

    def test_sum_all_zero(self):
        out = normalize_scores(np.zeros(3), "sum")
        assert out.tolist() == [0.0, 0.0, 0.0]

    def test_max(self):
        out = normalize_scores(np.array([2.0, 4.0]), "max")
        assert out.tolist() == [0.5, 1.0]

    def test_zscore(self):
        out = normalize_scores(np.array([1.0, 2.0, 3.0]), "zscore")
        assert out.mean() == pytest.approx(0.0)
        assert out.std() == pytest.approx(1.0)

    def test_zscore_constant_vector(self):
        out = normalize_scores(np.array([5.0, 5.0]), "zscore")
        assert out.tolist() == [0.0, 0.0]

    def test_rank(self):
        out = normalize_scores(np.array([10.0, 30.0, 20.0]), "rank")
        assert out.tolist() == [0.0, 1.0, 0.5]

    def test_rank_ties_share_average(self):
        out = normalize_scores(np.array([1.0, 1.0, 2.0]), "rank")
        assert out[0] == out[1] == pytest.approx(0.25)
        assert out[2] == pytest.approx(1.0)

    def test_rank_single_element(self):
        assert normalize_scores(np.array([7.0]), "rank").tolist() == [1.0]

    def test_unknown_method(self):
        with pytest.raises(ConfigError):
            normalize_scores(np.array([1.0]), "league")

    def test_non_finite_rejected(self):
        with pytest.raises(ConfigError):
            normalize_scores(np.array([np.nan]), "sum")

    def test_empty(self):
        assert len(normalize_scores(np.array([]), "rank")) == 0

    @settings(max_examples=30, deadline=None)
    @given(positive_vectors)
    def test_rank_preserves_order(self, values):
        # Values within 1e-9 relative of each other are quantized into
        # ties on purpose; only clearly distinct values must keep order.
        ranked = normalize_scores(values, "rank")
        peak = np.abs(values).max()
        for i in range(len(values)):
            for j in range(len(values)):
                if values[i] < values[j] \
                        and values[j] - values[i] > 1e-8 * max(peak, 1.0):
                    assert ranked[i] < ranked[j]

    def test_rank_quantizes_solver_noise_into_ties(self):
        base = 1.0
        noisy = np.array([base, base + 1e-13, base * 2])
        ranked = normalize_scores(noisy, "rank")
        assert ranked[0] == ranked[1]
        assert ranked[2] > ranked[0]

    @settings(max_examples=30, deadline=None)
    @given(positive_vectors)
    def test_sum_is_distribution(self, values):
        out = normalize_scores(values, "sum")
        total = out.sum()
        assert total == pytest.approx(1.0) or total == 0.0


class TestCombine:
    def test_theta_extremes(self):
        prestige = np.array([1.0, 0.0])
        popularity = np.array([0.0, 1.0])
        only_prestige = combine_importance(prestige, popularity, theta=1.0)
        only_popularity = combine_importance(prestige, popularity,
                                             theta=0.0)
        assert only_prestige[0] > only_prestige[1]
        assert only_popularity[1] > only_popularity[0]

    def test_balanced(self):
        prestige = np.array([1.0, 0.0])
        popularity = np.array([0.0, 1.0])
        balanced = combine_importance(prestige, popularity, theta=0.5)
        assert balanced[0] == pytest.approx(balanced[1])

    def test_scale_invariance_via_normalization(self):
        prestige = np.array([1.0, 2.0])
        popularity = np.array([1000.0, 4000.0])
        combined = combine_importance(prestige, popularity, theta=0.5)
        rescaled = combine_importance(prestige * 7, popularity / 13,
                                      theta=0.5)
        assert np.allclose(combined, rescaled)

    def test_validation(self):
        with pytest.raises(ConfigError):
            combine_importance(np.array([1.0]), np.array([1.0]), theta=1.5)
        with pytest.raises(ConfigError):
            combine_importance(np.array([1.0]), np.array([1.0, 2.0]))
