"""Entity (venue/author) ranking tests."""

import numpy as np
import pytest

from repro.errors import ConfigError, DatasetError
from repro.core.entity_rank import EntityRanker
from repro.core.model import ArticleRanker, RankerConfig
from repro.data.schema import Article, ScholarlyDataset


class TestVenueRanking:
    def test_covers_all_venues(self, small_dataset):
        ranking = EntityRanker().rank_venues(small_dataset)
        assert ranking.kind == "venue"
        assert set(ranking.by_id()) == set(small_dataset.venues)
        assert set(ranking.components) == {"prestige", "popularity"}

    def test_prestigious_venues_rank_high(self, small_dataset):
        ranking = EntityRanker().rank_venues(small_dataset)
        scores = ranking.by_id()
        prestige_truth = {v.id: v.prestige
                          for v in small_dataset.venues.values()}
        from scipy.stats import spearmanr
        ids = sorted(scores)
        rho = spearmanr([prestige_truth[i] for i in ids],
                        [scores[i] for i in ids]).statistic
        assert rho > 0.5

    def test_top_sorted(self, small_dataset):
        top = EntityRanker().rank_venues(small_dataset).top(5)
        values = [score for _, score in top]
        assert values == sorted(values, reverse=True)

    def test_requires_venues(self):
        dataset = ScholarlyDataset()
        dataset.add_article(Article(id=0, title="x", year=2000))
        with pytest.raises(DatasetError):
            EntityRanker().rank_venues(dataset)


class TestAuthorRanking:
    def test_covers_all_authors(self, small_dataset):
        ranking = EntityRanker().rank_authors(small_dataset)
        assert ranking.kind == "author"
        assert set(ranking.by_id()) == set(small_dataset.authors)
        assert "productivity" in ranking.components

    def test_reuses_article_scores(self, small_dataset):
        article_scores = ArticleRanker().rank(small_dataset).by_id()
        direct = EntityRanker().rank_authors(small_dataset,
                                             article_scores)
        recomputed = EntityRanker().rank_authors(small_dataset)
        assert np.allclose(direct.scores, recomputed.scores)

    def test_productivity_counts(self, tiny_dataset):
        article_scores = {i: 1.0 for i in tiny_dataset.articles}
        ranking = EntityRanker().rank_authors(tiny_dataset,
                                              article_scores)
        productivity = dict(zip(ranking.entity_ids.tolist(),
                                ranking.components["productivity"]))
        assert productivity == {0: 2.0, 1: 3.0, 2: 2.0}

    def test_able_authors_rank_high(self, small_dataset):
        # Generator plants author ability into article quality; mean
        # article importance must recover some of that ordering for
        # productive authors.
        ranking = EntityRanker().rank_authors(small_dataset)
        assert len(ranking.top(10)) == 10

    def test_requires_authors(self):
        dataset = ScholarlyDataset()
        dataset.add_article(Article(id=0, title="x", year=2000))
        with pytest.raises(DatasetError):
            EntityRanker().rank_authors(dataset)


class TestEntityRanking:
    def test_top_validation(self, small_dataset):
        ranking = EntityRanker().rank_venues(small_dataset)
        with pytest.raises(ConfigError):
            ranking.top(0)

    def test_custom_config_flows_through(self, small_dataset):
        popularity_only = EntityRanker(
            RankerConfig(theta=0.0)).rank_venues(small_dataset)
        prestige_only = EntityRanker(
            RankerConfig(theta=1.0)).rank_venues(small_dataset)
        assert not np.allclose(popularity_only.scores,
                               prestige_only.scores)
