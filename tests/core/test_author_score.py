"""Author-importance aggregation tests."""

import numpy as np
import pytest

from repro.errors import ConfigError, DatasetError
from repro.core.author_score import (
    article_author_feature,
    author_importance,
)
from repro.data.schema import Article, Author, ScholarlyDataset


@pytest.fixture()
def importance_map(tiny_dataset):
    return {0: 1.0, 1: 0.8, 2: 0.2, 3: 0.4, 4: 0.6}


class TestAuthorImportance:
    def test_mean(self, tiny_dataset, importance_map):
        scores = author_importance(tiny_dataset, importance_map, "mean")
        # Ada (0): articles 0, 1 -> (1.0 + 0.8) / 2
        assert scores[0] == pytest.approx(0.9)
        # Bob (1): articles 1, 2, 4 -> (0.8 + 0.2 + 0.6) / 3
        assert scores[1] == pytest.approx(1.6 / 3)
        # Cy (2): articles 3, 4 -> (0.4 + 0.6) / 2
        assert scores[2] == pytest.approx(0.5)

    def test_sum(self, tiny_dataset, importance_map):
        scores = author_importance(tiny_dataset, importance_map, "sum")
        assert scores[0] == pytest.approx(1.8)
        assert scores[1] == pytest.approx(1.6)

    def test_max(self, tiny_dataset, importance_map):
        scores = author_importance(tiny_dataset, importance_map, "max")
        assert scores[0] == pytest.approx(1.0)
        assert scores[1] == pytest.approx(0.8)

    def test_author_without_articles_scores_zero(self, tiny_dataset,
                                                 importance_map):
        tiny_dataset.add_author(Author(id=9, name="Idle"))
        scores = author_importance(tiny_dataset, importance_map, "mean")
        assert scores[9] == 0.0

    def test_unknown_mode(self, tiny_dataset, importance_map):
        with pytest.raises(ConfigError):
            author_importance(tiny_dataset, importance_map, "median")

    def test_missing_importance_raises(self, tiny_dataset):
        with pytest.raises(DatasetError, match="missing from importance"):
            author_importance(tiny_dataset, {0: 1.0}, "mean")

    def test_unknown_author_raises(self, importance_map):
        dataset = ScholarlyDataset()
        dataset.add_article(Article(id=0, title="x", year=2000,
                                    author_ids=(42,)))
        with pytest.raises(DatasetError, match="unknown author"):
            author_importance(dataset, {0: 1.0}, "mean")


class TestArticleAuthorFeature:
    def test_mean_over_team(self, tiny_dataset, importance_map):
        author_scores = author_importance(tiny_dataset, importance_map,
                                          "mean")
        node_ids = np.array([0, 1, 2, 3, 4])
        feature = article_author_feature(tiny_dataset, author_scores,
                                         node_ids)
        # Article 1 authored by Ada and Bob.
        expected = (author_scores[0] + author_scores[1]) / 2
        assert feature[1] == pytest.approx(expected)

    def test_authorless_articles_get_mean_fill(self, importance_map):
        dataset = ScholarlyDataset()
        dataset.add_author(Author(id=0, name="Solo"))
        dataset.add_article(Article(id=0, title="a", year=2000,
                                    author_ids=(0,)))
        dataset.add_article(Article(id=1, title="b", year=2001))
        feature = article_author_feature(dataset, {0: 0.7},
                                         np.array([0, 1]))
        assert feature[0] == pytest.approx(0.7)
        assert feature[1] == pytest.approx(0.7)  # filled with mean

    def test_all_authorless(self):
        dataset = ScholarlyDataset()
        dataset.add_article(Article(id=0, title="a", year=2000))
        feature = article_author_feature(dataset, {}, np.array([0]))
        assert feature[0] == 0.0
