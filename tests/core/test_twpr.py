"""Time-Weighted PageRank: solver agreement, reductions, optimization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, ConvergenceError
from repro.graph.csr import CSRGraph
from repro.core.time_weight import exponential_decay, no_decay
from repro.core.twpr import (
    time_weight_edges,
    time_weighted_pagerank,
)
from repro.ranking.pagerank import pagerank


@pytest.fixture()
def dated_graph():
    """2 cites {0,1}; 3 cites {2}; years make the gaps differ."""
    graph = CSRGraph.from_edges([(2, 0), (2, 1), (3, 2)],
                                nodes=[0, 1, 2, 3])
    years = np.array([1990, 2004, 2005, 2010])
    return graph, years


class TestEdgeWeights:
    def test_weights_reflect_gap(self, dated_graph):
        graph, years = dated_graph
        weights = time_weight_edges(graph, years, exponential_decay(0.1))
        # Edge order within node 2: targets 0 (gap 15) and 1 (gap 1).
        idx2 = graph.index_of(2)
        slice_ = slice(graph.indptr[idx2], graph.indptr[idx2 + 1])
        targets = graph.indices[slice_]
        gap_by_target = {int(t): w
                         for t, w in zip(targets, weights[slice_])}
        assert gap_by_target[graph.index_of(0)] == \
            pytest.approx(np.exp(-1.5))
        assert gap_by_target[graph.index_of(1)] == \
            pytest.approx(np.exp(-0.1))

    def test_forward_in_time_edges_get_full_weight(self):
        graph = CSRGraph.from_edges([(0, 1)])
        years = np.array([2000, 2005])  # cited is newer: data noise
        weights = time_weight_edges(graph, years, exponential_decay(0.5))
        assert weights[0] == pytest.approx(1.0)

    def test_alignment_validated(self, dated_graph):
        graph, years = dated_graph
        with pytest.raises(ConfigError):
            time_weight_edges(graph, years[:2], exponential_decay(0.1))

    def test_bad_decay_output_rejected(self, dated_graph):
        graph, years = dated_graph
        with pytest.raises(ConfigError):
            time_weight_edges(graph, years, lambda gap: gap * 10 + 2)


class TestReduction:
    def test_no_decay_equals_pagerank(self, small_dataset):
        graph = small_dataset.citation_csr()
        years = small_dataset.article_years(graph)
        twpr = time_weighted_pagerank(graph, years, decay=no_decay(),
                                      tol=1e-12)
        plain = pagerank(graph, tol=1e-12, max_iter=500)
        assert np.abs(twpr.scores - plain.scores).sum() < 1e-8

    def test_decay_shifts_mass_to_recently_cited(self, dated_graph):
        graph, years = dated_graph
        flat = time_weighted_pagerank(graph, years, decay=no_decay())
        decayed = time_weighted_pagerank(graph, years,
                                         decay=exponential_decay(0.3))
        # Node 1 (cited across a 1-year gap) gains relative to node 0
        # (cited across a 15-year gap).
        assert decayed.scores[1] > flat.scores[1]
        assert decayed.scores[0] < flat.scores[0]


class TestSolverAgreement:
    @pytest.mark.parametrize("method", ["power", "gauss_seidel", "levels"])
    def test_methods_share_fixed_point(self, small_dataset, method):
        graph = small_dataset.citation_csr()
        years = small_dataset.article_years(graph)
        reference = time_weighted_pagerank(graph, years, method="power",
                                           tol=1e-12, max_iter=500)
        result = time_weighted_pagerank(graph, years, method=method,
                                        tol=1e-12, max_iter=500)
        assert result.converged
        assert np.abs(result.scores - reference.scores).sum() < 1e-8

    def test_levels_much_fewer_iterations_on_dag(self, small_dataset):
        graph = small_dataset.citation_csr()
        years = small_dataset.article_years(graph)
        power = time_weighted_pagerank(graph, years, method="power")
        levels = time_weighted_pagerank(graph, years, method="levels")
        assert levels.iterations <= power.iterations / 5

    def test_cyclic_graph_still_converges(self):
        graph = CSRGraph.from_edges([(0, 1), (1, 0), (2, 0), (2, 1)])
        years = np.array([2000, 2000, 2005])
        for method in ("power", "gauss_seidel", "levels"):
            result = time_weighted_pagerank(graph, years, method=method,
                                            tol=1e-11, max_iter=500)
            assert result.converged, method
        power = time_weighted_pagerank(graph, years, method="power",
                                       tol=1e-12, max_iter=500)
        levels = time_weighted_pagerank(graph, years, method="levels",
                                        tol=1e-12, max_iter=500)
        assert np.abs(power.scores - levels.scores).sum() < 1e-8

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 7), st.integers(0, 7)),
                    min_size=1, max_size=20),
           st.lists(st.integers(1990, 2010), min_size=8, max_size=8))
    def test_agreement_on_random_graphs(self, edges, year_list):
        graph = CSRGraph.from_edges(edges, nodes=range(8))
        years = np.array(year_list)
        power = time_weighted_pagerank(graph, years, method="power",
                                       tol=1e-12, max_iter=1000)
        levels = time_weighted_pagerank(graph, years, method="levels",
                                        tol=1e-12, max_iter=1000)
        assert np.abs(power.scores - levels.scores).sum() < 1e-7


class TestInterface:
    def test_auto_uses_levels(self, dated_graph):
        graph, years = dated_graph
        result = time_weighted_pagerank(graph, years, method="auto")
        assert result.method == "levels"

    def test_unknown_method(self, dated_graph):
        graph, years = dated_graph
        with pytest.raises(ConfigError):
            time_weighted_pagerank(graph, years, method="magic")

    @pytest.mark.parametrize("kwargs", [
        {"damping": 1.0}, {"tol": 0}, {"max_iter": 0},
    ])
    def test_invalid_parameters(self, dated_graph, kwargs):
        graph, years = dated_graph
        with pytest.raises(ConfigError):
            time_weighted_pagerank(graph, years, **kwargs)

    def test_raise_on_divergence(self):
        graph = CSRGraph.from_edges([(0, 1), (1, 0), (1, 2), (2, 0)])
        years = np.array([2000, 2001, 2002])
        with pytest.raises(ConvergenceError):
            time_weighted_pagerank(graph, years, method="power",
                                   tol=1e-15, max_iter=2,
                                   raise_on_divergence=True)

    def test_empty_graph(self):
        result = time_weighted_pagerank(
            CSRGraph.from_edges([], nodes=[]), np.array([]))
        assert result.converged

    def test_warm_start(self, small_dataset):
        graph = small_dataset.citation_csr()
        years = small_dataset.article_years(graph)
        cold = time_weighted_pagerank(graph, years, method="power",
                                      tol=1e-12, max_iter=500)
        warm = time_weighted_pagerank(graph, years, method="power",
                                      tol=1e-12, max_iter=500,
                                      initial=cold.scores)
        assert warm.iterations < cold.iterations


class TestInitialValidation:
    """Regression: a bad `initial` used to flow straight into the solver
    (power normalized silently, gauss_seidel/levels used it raw)."""

    @pytest.mark.parametrize("method", ["power", "gauss_seidel", "levels"])
    @pytest.mark.parametrize("bad", [
        np.ones(3),                      # wrong shape
        np.array([1.0, np.nan, 1.0, 1.0]),
        np.array([1.0, np.inf, 1.0, 1.0]),
        np.array([1.0, -1.0, 1.0, 1.0]),  # negative mass
        np.zeros(4),                      # zero total mass
    ])
    def test_bad_initial_rejected(self, dated_graph, method, bad):
        graph, years = dated_graph
        with pytest.raises(ConfigError):
            time_weighted_pagerank(graph, years, method=method, initial=bad)

    @pytest.mark.parametrize("method", ["power", "gauss_seidel", "levels"])
    def test_unnormalized_initial_is_normalized(self, dated_graph, method):
        graph, years = dated_graph
        base = time_weighted_pagerank(graph, years, method=method,
                                      tol=1e-12, max_iter=500)
        scaled = time_weighted_pagerank(graph, years, method=method,
                                        tol=1e-12, max_iter=500,
                                        initial=np.full(4, 7.0))
        assert np.abs(base.scores - scaled.scores).sum() < 1e-10


class TestTelemetry:
    """Telemetry is a passive observer: identical fixed points on/off."""

    @pytest.mark.parametrize("method", ["power", "gauss_seidel", "levels"])
    def test_scores_bit_identical_with_telemetry(self, small_dataset,
                                                 method):
        from repro.obs import SolverTelemetry

        graph = small_dataset.citation_csr()
        years = small_dataset.article_years(graph)
        plain = time_weighted_pagerank(graph, years, method=method)
        telemetry = SolverTelemetry()
        observed = time_weighted_pagerank(graph, years, method=method,
                                          telemetry=telemetry)
        assert np.array_equal(plain.scores, observed.scores)
        assert observed.iterations == plain.iterations
        assert telemetry.iterations == observed.iterations
        assert telemetry.solver == method
        assert telemetry.residuals[-1] <= 1e-10
        assert len(telemetry.dangling_mass) == telemetry.iterations

    def test_auto_reports_levels(self, small_dataset):
        from repro.obs import SolverTelemetry

        graph = small_dataset.citation_csr()
        years = small_dataset.article_years(graph)
        telemetry = SolverTelemetry()
        time_weighted_pagerank(graph, years, method="auto",
                               telemetry=telemetry)
        assert telemetry.solver == "levels"
        assert telemetry.counters["levels"] >= 1
        assert "dangling_nodes" in telemetry.counters
