"""Popularity (decayed citation count) tests."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.graph.csr import CSRGraph
from repro.core.popularity import popularity_scores
from repro.core.time_weight import exponential_decay, no_decay


@pytest.fixture()
def two_citers():
    """0 is cited by 1 (old, 2002) and 2 (fresh, 2010)."""
    graph = CSRGraph.from_edges([(1, 0), (2, 0)], nodes=[0, 1, 2])
    years = np.array([2000, 2002, 2010])
    return graph, years


class TestPopularity:
    def test_hand_computed(self, two_citers):
        graph, years = two_citers
        scores = popularity_scores(graph, years, 2010,
                                   decay=exponential_decay(0.5))
        expected = np.exp(-0.5 * 8) + np.exp(0.0)
        assert scores[0] == pytest.approx(expected)
        assert scores[1] == 0.0
        assert scores[2] == 0.0

    def test_no_decay_equals_citation_count(self, small_dataset):
        graph = small_dataset.citation_csr()
        years = small_dataset.article_years(graph)
        scores = popularity_scores(graph, years, int(years.max()),
                                   decay=no_decay())
        assert np.array_equal(scores, graph.in_degrees().astype(float))

    def test_recent_citations_weigh_more(self, two_citers):
        graph, years = two_citers
        scores = popularity_scores(graph, years, 2010,
                                   decay=exponential_decay(0.5))
        fresh_only = np.exp(0.0)
        assert scores[0] < 2 * fresh_only
        assert scores[0] > fresh_only

    def test_default_decay(self, two_citers):
        graph, years = two_citers
        scores = popularity_scores(graph, years, 2010)
        assert scores[0] > 0

    def test_self_boost_breaks_zero_ties(self, two_citers):
        graph, years = two_citers
        scores = popularity_scores(graph, years, 2010,
                                   decay=exponential_decay(0.5),
                                   self_boost=0.1)
        # Uncited nodes 1 and 2 now differ by recency.
        assert scores[2] > scores[1] > 0

    def test_validation(self, two_citers):
        graph, years = two_citers
        with pytest.raises(ConfigError):
            popularity_scores(graph, years[:2], 2010)
        with pytest.raises(ConfigError):
            popularity_scores(graph, years, 2005)
        with pytest.raises(ConfigError):
            popularity_scores(graph, years, 2010, self_boost=-1.0)

    def test_empty_graph(self):
        scores = popularity_scores(CSRGraph.from_edges([], nodes=[]),
                                   np.array([]), 2010)
        assert len(scores) == 0
