"""Venue-graph aggregation tests."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.core.time_weight import exponential_decay, no_decay
from repro.core.venue_graph import build_venue_graph, venue_popularity
from repro.data.schema import Article, ScholarlyDataset, Venue


class TestBuildVenueGraph:
    def test_aggregates_cross_venue_citations(self, tiny_dataset):
        vg = build_venue_graph(tiny_dataset)
        graph = vg.graph
        assert graph.num_nodes == 2
        # Cross-venue citations: a2(V1)->a0(V0), a4(V1)->a1(V0),
        # a4(V1)->a2(V1, self loop dropped).
        idx1 = graph.index_of(1)
        idx0 = graph.index_of(0)
        assert graph.num_edges == 1
        assert graph.neighbors(idx1).tolist() == [idx0]
        assert graph.neighbor_weights(idx1)[0] == pytest.approx(2.0)

    def test_self_loops_included_on_request(self, tiny_dataset):
        vg = build_venue_graph(tiny_dataset, include_self_loops=True)
        # Adds V0->V0 (a1->a0, a3->a1) and V1->V1 (a4->a2).
        assert vg.graph.num_edges == 3

    def test_decay_weights_edges(self, tiny_dataset):
        decay = exponential_decay(0.5)
        vg = build_venue_graph(tiny_dataset, decay=decay)
        idx1 = vg.graph.index_of(1)
        weight = vg.graph.neighbor_weights(idx1)[0]
        # a2(2005)->a0(2000): gap 5; a4(2010)->a1(2003): gap 7.
        assert weight == pytest.approx(np.exp(-2.5) + np.exp(-3.5))

    def test_citation_counts_raw(self, tiny_dataset):
        vg = build_venue_graph(tiny_dataset, decay=exponential_decay(0.5))
        assert vg.citation_counts.tolist() == [2.0]

    def test_requires_venues(self):
        dataset = ScholarlyDataset()
        dataset.add_article(Article(id=1, title="x", year=2000))
        with pytest.raises(DatasetError):
            build_venue_graph(dataset)

    def test_articles_without_venue_skipped(self):
        dataset = ScholarlyDataset()
        dataset.add_venue(Venue(id=0, name="V"))
        dataset.add_article(Article(id=0, title="a", year=2000,
                                    venue_id=0))
        dataset.add_article(Article(id=1, title="b", year=2005,
                                    venue_id=None, references=(0,)))
        vg = build_venue_graph(dataset)
        assert vg.graph.num_edges == 0

    def test_generated_dataset(self, small_dataset):
        vg = build_venue_graph(small_dataset)
        assert vg.graph.num_nodes == small_dataset.num_venues
        assert vg.graph.num_edges > 0
        assert (vg.citation_counts >= 1).all()


class TestVenuePopularity:
    def test_hand_computed(self, tiny_dataset):
        decay = exponential_decay(0.5)
        vg = build_venue_graph(tiny_dataset)
        pop = venue_popularity(tiny_dataset, 2010, decay, vg)
        # Citations into V0: a1->a0 (citing 2003), a2->a0 (2005),
        # a3->a1 (2008), a4->a1 (2010).
        v0 = np.exp(-0.5 * 7) + np.exp(-0.5 * 5) + np.exp(-0.5 * 2) + 1.0
        # Citations into V1: a4->a2 (2010).
        v1 = 1.0
        assert pop[vg.venue_index(0)] == pytest.approx(v0)
        assert pop[vg.venue_index(1)] == pytest.approx(v1)

    def test_observation_before_publication_rejected(self, tiny_dataset):
        vg = build_venue_graph(tiny_dataset)
        with pytest.raises(DatasetError):
            venue_popularity(tiny_dataset, 2005, no_decay(), vg)
