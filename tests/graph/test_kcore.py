"""K-core decomposition tests."""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.csr import CSRGraph
from repro.graph.kcore import core_numbers, max_core


def simple_edges(pairs):
    """Dedupe to an undirected simple edge set (no self loops)."""
    seen = set()
    result = []
    for u, v in pairs:
        if u == v or (u, v) in seen or (v, u) in seen:
            continue
        seen.add((u, v))
        result.append((u, v))
    return result


class TestKnownGraphs:
    def test_triangle_is_2core(self):
        graph = CSRGraph.from_edges([(0, 1), (1, 2), (2, 0)])
        assert core_numbers(graph).tolist() == [2, 2, 2]
        assert max_core(graph) == 2

    def test_star_is_1core(self):
        graph = CSRGraph.from_edges([(0, 1), (0, 2), (0, 3)])
        assert core_numbers(graph).tolist() == [1, 1, 1, 1]

    def test_clique_plus_tail(self):
        clique = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
        graph = CSRGraph.from_edges(clique + [(3, 4)], nodes=range(5))
        cores = core_numbers(graph)
        assert cores[:4].tolist() == [3, 3, 3, 3]
        assert cores[4] == 1

    def test_isolated_nodes(self):
        graph = CSRGraph.from_edges([], nodes=[0, 1])
        assert core_numbers(graph).tolist() == [0, 0]
        assert max_core(graph) == 0

    def test_empty(self):
        graph = CSRGraph.from_edges([], nodes=[])
        assert len(core_numbers(graph)) == 0
        assert max_core(graph) == 0


class TestAgainstNetworkx:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 11), st.integers(0, 11)),
                    min_size=0, max_size=50))
    def test_matches_networkx(self, pairs):
        edges = simple_edges(pairs)
        graph = CSRGraph.from_edges(edges, nodes=range(12))
        ours = core_numbers(graph)
        oracle = nx.Graph()
        oracle.add_nodes_from(range(12))
        oracle.add_edges_from(edges)
        theirs = nx.core_number(oracle)
        for node in range(12):
            assert ours[node] == theirs[node]

    def test_citation_graph(self, small_dataset):
        graph = small_dataset.citation_csr()
        cores = core_numbers(graph)
        assert len(cores) == graph.num_nodes
        assert cores.max() >= 2  # dense kernels exist in citation nets
