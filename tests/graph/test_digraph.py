"""Unit tests for the mutable DiGraph."""

import pytest

from repro.errors import EdgeNotFoundError, GraphError, NodeNotFoundError
from repro.graph.digraph import DiGraph


class TestConstruction:
    def test_empty_graph(self):
        graph = DiGraph()
        assert graph.num_nodes == 0
        assert graph.num_edges == 0
        assert len(graph) == 0

    def test_add_node_idempotent(self):
        graph = DiGraph()
        graph.add_node(7)
        graph.add_node(7)
        assert graph.num_nodes == 1
        assert 7 in graph

    def test_add_edge_creates_endpoints(self):
        graph = DiGraph()
        graph.add_edge(1, 2)
        assert graph.num_nodes == 2
        assert graph.num_edges == 1
        assert graph.has_edge(1, 2)
        assert not graph.has_edge(2, 1)

    def test_add_edge_overwrites_weight(self):
        graph = DiGraph()
        graph.add_edge(1, 2, weight=1.0)
        graph.add_edge(1, 2, weight=5.0)
        assert graph.num_edges == 1
        assert graph.edge_weight(1, 2) == 5.0

    def test_add_edge_accumulates(self):
        graph = DiGraph()
        graph.add_edge(1, 2, weight=1.0)
        graph.add_edge(1, 2, weight=2.5, accumulate=True)
        assert graph.edge_weight(1, 2) == 3.5
        assert graph.num_edges == 1

    def test_negative_weight_rejected(self):
        graph = DiGraph()
        with pytest.raises(GraphError):
            graph.add_edge(1, 2, weight=-0.5)

    def test_add_edges_bulk(self):
        graph = DiGraph()
        graph.add_edges([(1, 2), (2, 3)])
        assert graph.num_edges == 2
        assert graph.edge_weight(1, 2) == 1.0

    def test_self_loop_allowed(self):
        graph = DiGraph()
        graph.add_edge(1, 1)
        assert graph.has_edge(1, 1)
        assert graph.in_degree(1) == 1
        assert graph.out_degree(1) == 1


class TestRemoval:
    def test_remove_edge(self, diamond_graph):
        diamond_graph.remove_edge(1, 2)
        assert not diamond_graph.has_edge(1, 2)
        assert diamond_graph.num_edges == 3
        assert 2 in diamond_graph  # node survives

    def test_remove_missing_edge_raises(self, diamond_graph):
        with pytest.raises(EdgeNotFoundError):
            diamond_graph.remove_edge(4, 1)

    def test_remove_node_removes_incident_edges(self, diamond_graph):
        diamond_graph.remove_node(2)
        assert 2 not in diamond_graph
        assert diamond_graph.num_edges == 2
        assert not diamond_graph.has_edge(1, 2)

    def test_remove_missing_node_raises(self):
        with pytest.raises(NodeNotFoundError):
            DiGraph().remove_node(1)


class TestQueries:
    def test_successors_predecessors(self, diamond_graph):
        assert sorted(diamond_graph.successors(1)) == [2, 3]
        assert sorted(diamond_graph.predecessors(4)) == [2, 3]
        assert list(diamond_graph.successors(4)) == []

    def test_degrees(self, diamond_graph):
        assert diamond_graph.out_degree(1) == 2
        assert diamond_graph.in_degree(1) == 0
        assert diamond_graph.in_degree(4) == 2

    def test_out_weight(self):
        graph = DiGraph()
        graph.add_edge(1, 2, weight=0.5)
        graph.add_edge(1, 3, weight=1.5)
        assert graph.out_weight(1) == 2.0

    def test_unknown_node_raises(self, diamond_graph):
        for method in (diamond_graph.successors,
                       diamond_graph.predecessors,
                       diamond_graph.out_degree, diamond_graph.in_degree,
                       diamond_graph.out_weight):
            with pytest.raises(NodeNotFoundError):
                method(99)

    def test_edge_weight_missing_raises(self, diamond_graph):
        with pytest.raises(EdgeNotFoundError):
            diamond_graph.edge_weight(4, 1)

    def test_edges_iteration(self, diamond_graph):
        edges = {(u, v) for u, v, _ in diamond_graph.edges()}
        assert edges == {(1, 2), (1, 3), (2, 4), (3, 4)}


class TestDerived:
    def test_copy_is_independent(self, diamond_graph):
        clone = diamond_graph.copy()
        clone.add_edge(4, 1)
        assert not diamond_graph.has_edge(4, 1)
        assert clone.num_edges == diamond_graph.num_edges + 1

    def test_reverse(self, diamond_graph):
        reverse = diamond_graph.reverse()
        assert reverse.has_edge(2, 1)
        assert reverse.has_edge(4, 3)
        assert reverse.num_edges == diamond_graph.num_edges
        assert reverse.num_nodes == diamond_graph.num_nodes

    def test_reverse_preserves_weights(self):
        graph = DiGraph()
        graph.add_edge(1, 2, weight=3.5)
        assert graph.reverse().edge_weight(2, 1) == 3.5

    def test_subgraph(self, diamond_graph):
        sub = diamond_graph.subgraph([1, 2, 4])
        assert sub.num_nodes == 3
        assert sub.has_edge(1, 2)
        assert sub.has_edge(2, 4)
        assert not sub.has_edge(1, 3)

    def test_subgraph_unknown_node_raises(self, diamond_graph):
        with pytest.raises(NodeNotFoundError):
            diamond_graph.subgraph([1, 99])

    def test_to_csr_counts(self, diamond_graph):
        csr = diamond_graph.to_csr()
        assert csr.num_nodes == 4
        assert csr.num_edges == 4
