"""Unit and property tests for the CSR snapshot."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError, NodeNotFoundError
from repro.graph.csr import CSRGraph


def edges_strategy(max_nodes=12, max_edges=40):
    node = st.integers(min_value=0, max_value=max_nodes - 1)
    return st.lists(st.tuples(node, node), min_size=0, max_size=max_edges)


class TestConstruction:
    def test_from_edges_basic(self):
        graph = CSRGraph.from_edges([(10, 20), (10, 30), (20, 30)])
        assert graph.num_nodes == 3
        assert graph.num_edges == 3
        assert graph.node_ids.tolist() == [10, 20, 30]

    def test_from_edges_explicit_nodes_keeps_isolated(self):
        graph = CSRGraph.from_edges([(1, 2)], nodes=[1, 2, 3])
        assert graph.num_nodes == 3
        assert graph.out_degrees().tolist() == [1, 0, 0]

    def test_from_edges_duplicate_node_list_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph.from_edges([(1, 2)], nodes=[1, 2, 2])

    def test_from_edges_unknown_endpoint_rejected(self):
        with pytest.raises(NodeNotFoundError):
            CSRGraph.from_edges([(1, 9)], nodes=[1, 2])

    def test_from_edges_weights_align(self):
        graph = CSRGraph.from_edges([(1, 2), (2, 1)], weights=[0.5, 2.0])
        i = graph.index_of(1)
        assert graph.neighbor_weights(i).tolist() == [0.5]

    def test_from_edges_weight_length_mismatch(self):
        with pytest.raises(GraphError):
            CSRGraph.from_edges([(1, 2)], weights=[1.0, 2.0])

    def test_from_digraph_matches(self, diamond_graph):
        csr = CSRGraph.from_digraph(diamond_graph)
        assert csr.num_nodes == diamond_graph.num_nodes
        assert csr.num_edges == diamond_graph.num_edges
        idx1 = csr.index_of(1)
        targets = {int(csr.node_ids[t]) for t in csr.neighbors(idx1)}
        assert targets == {2, 3}

    def test_invalid_arrays_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([0, 1]), np.array([0, 1]),
                     np.array([1.0]), np.array([5]))
        with pytest.raises(GraphError):
            CSRGraph(np.array([0, 2]), np.array([0]),
                     np.array([1.0]), np.array([5]))

    def test_empty_graph(self):
        graph = CSRGraph.from_edges([], nodes=[])
        assert graph.num_nodes == 0
        assert graph.num_edges == 0


class TestQueries:
    def test_index_of_unknown_raises(self):
        graph = CSRGraph.from_edges([(1, 2)])
        with pytest.raises(NodeNotFoundError):
            graph.index_of(99)

    def test_neighbors_bounds(self):
        graph = CSRGraph.from_edges([(1, 2)])
        with pytest.raises(NodeNotFoundError):
            graph.neighbors(5)
        with pytest.raises(NodeNotFoundError):
            graph.neighbor_weights(-1)

    def test_degrees(self, diamond_graph):
        csr = diamond_graph.to_csr()
        assert csr.out_degrees().sum() == csr.num_edges
        assert csr.in_degrees().sum() == csr.num_edges
        assert csr.in_degrees()[csr.index_of(4)] == 2

    def test_out_strengths(self):
        graph = CSRGraph.from_edges([(1, 2), (1, 3)], weights=[0.5, 1.5])
        strengths = graph.out_strengths()
        assert strengths[graph.index_of(1)] == pytest.approx(2.0)
        assert strengths[graph.index_of(2)] == 0.0

    def test_edge_array_roundtrip(self, diamond_graph):
        csr = diamond_graph.to_csr()
        src, dst, weights = csr.edge_array()
        rebuilt = {(int(csr.node_ids[s]), int(csr.node_ids[d]))
                   for s, d in zip(src, dst)}
        original = {(u, v) for u, v, _ in diamond_graph.edges()}
        assert rebuilt == original
        assert len(weights) == csr.num_edges

    def test_to_scipy(self, diamond_graph):
        matrix = diamond_graph.to_csr().to_scipy()
        assert matrix.shape == (4, 4)
        assert matrix.nnz == 4

    def test_edges_iterator(self):
        graph = CSRGraph.from_edges([(1, 2), (2, 3)])
        triples = list(graph.edges())
        assert len(triples) == 2
        assert all(w == 1.0 for _, _, w in triples)


class TestReverse:
    def test_reverse_swaps_edges(self, diamond_graph):
        csr = diamond_graph.to_csr()
        rev = csr.reverse()
        assert rev.num_edges == csr.num_edges
        assert rev.in_degrees().tolist() == csr.out_degrees().tolist()

    def test_reverse_is_cached_and_involutive(self, diamond_graph):
        csr = diamond_graph.to_csr()
        assert csr.reverse().reverse() is csr

    @settings(max_examples=30, deadline=None)
    @given(edges_strategy())
    def test_reverse_preserves_edge_multiset(self, edges):
        graph = CSRGraph.from_edges(edges, nodes=range(12))
        src, dst, _ = graph.edge_array()
        rsrc, rdst, _ = graph.reverse().edge_array()
        forward = sorted(zip(src.tolist(), dst.tolist()))
        backward = sorted(zip(rdst.tolist(), rsrc.tolist()))
        assert forward == backward

    @settings(max_examples=30, deadline=None)
    @given(edges_strategy())
    def test_degree_sums_match(self, edges):
        graph = CSRGraph.from_edges(edges, nodes=range(12))
        assert graph.out_degrees().sum() == len(edges)
        assert graph.in_degrees().sum() == len(edges)
