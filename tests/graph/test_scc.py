"""SCC and condensation tests, with networkx as the oracle."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.csr import CSRGraph
from repro.graph.scc import condensation, strongly_connected_components
from repro.graph.toposort import topological_sort


def as_id_sets(components, graph):
    return {frozenset(int(graph.node_ids[n]) for n in comp)
            for comp in components}


class TestKnownGraphs:
    def test_single_cycle(self):
        graph = CSRGraph.from_edges([(0, 1), (1, 2), (2, 0)])
        components = strongly_connected_components(graph)
        assert len(components) == 1
        assert sorted(components[0]) == [0, 1, 2]

    def test_dag_gives_singletons(self, diamond_graph):
        graph = diamond_graph.to_csr()
        components = strongly_connected_components(graph)
        assert len(components) == 4
        assert all(len(c) == 1 for c in components)

    def test_two_cycles_bridge(self):
        edges = [(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)]
        graph = CSRGraph.from_edges(edges)
        sets = as_id_sets(strongly_connected_components(graph), graph)
        assert sets == {frozenset({0, 1}), frozenset({2, 3})}

    def test_emission_order_sinks_first(self):
        # 0 -> 1 -> 2: Tarjan must emit 2 before 1 before 0.
        graph = CSRGraph.from_edges([(0, 1), (1, 2)])
        order = [c[0] for c in strongly_connected_components(graph)]
        assert order == [2, 1, 0]

    def test_empty_graph(self):
        graph = CSRGraph.from_edges([], nodes=[])
        assert strongly_connected_components(graph) == []

    def test_isolated_nodes(self):
        graph = CSRGraph.from_edges([], nodes=[1, 2, 3])
        assert len(strongly_connected_components(graph)) == 3


class TestCondensation:
    def test_condensation_is_dag(self, cyclic_graph):
        graph = cyclic_graph.to_csr()
        dag, membership = condensation(graph)
        assert topological_sort(dag) is not None
        assert len(membership) == graph.num_nodes
        assert dag.num_nodes == membership.max() + 1

    def test_membership_consistent(self, cyclic_graph):
        graph = cyclic_graph.to_csr()
        components = strongly_connected_components(graph)
        _, membership = condensation(graph)
        for comp_id, members in enumerate(components):
            assert {membership[m] for m in members} == {comp_id}

    def test_edge_weights_aggregate(self):
        # Two parallel-at-component-level edges collapse with summed weight.
        edges = [(0, 1), (1, 0), (0, 2), (1, 2)]
        graph = CSRGraph.from_edges(edges)
        dag, membership = condensation(graph)
        assert dag.num_edges == 1
        assert dag.weights[0] == pytest.approx(2.0)

    def test_deep_graph_no_recursion_error(self):
        # A 5000-long path would blow Python's default recursion limit if
        # Tarjan were recursive.
        n = 5000
        graph = CSRGraph.from_edges([(i, i + 1) for i in range(n - 1)])
        components = strongly_connected_components(graph)
        assert len(components) == n


class TestAgainstNetworkx:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 14), st.integers(0, 14)),
                    min_size=0, max_size=60))
    def test_matches_networkx(self, edges):
        graph = CSRGraph.from_edges(edges, nodes=range(15))
        ours = as_id_sets(strongly_connected_components(graph), graph)
        oracle = nx.DiGraph()
        oracle.add_nodes_from(range(15))
        oracle.add_edges_from(edges)
        theirs = {frozenset(c)
                  for c in nx.strongly_connected_components(oracle)}
        assert ours == theirs
