"""Traversal utility tests."""

import networkx as nx
import pytest

from repro.errors import NodeNotFoundError
from repro.graph.csr import CSRGraph
from repro.graph.traversal import (
    bfs_distances,
    citation_depth,
    reachable_set,
    weakly_connected_components,
)


@pytest.fixture()
def chain_with_branch():
    # 0 -> 1 -> 2 -> 3, plus 1 -> 4; node 5 isolated.
    return CSRGraph.from_edges([(0, 1), (1, 2), (2, 3), (1, 4)],
                               nodes=range(6))


class TestBfsDistances:
    def test_forward(self, chain_with_branch):
        distances = bfs_distances(chain_with_branch, [0])
        assert distances.tolist() == [0, 1, 2, 3, 2, -1]

    def test_reverse(self, chain_with_branch):
        distances = bfs_distances(chain_with_branch, [3], reverse=True)
        assert distances.tolist() == [3, 2, 1, 0, -1, -1]

    def test_multi_source(self, chain_with_branch):
        distances = bfs_distances(chain_with_branch, [0, 4])
        assert distances[4] == 0
        assert distances[1] == 1

    def test_unknown_source(self, chain_with_branch):
        with pytest.raises(NodeNotFoundError):
            bfs_distances(chain_with_branch, [99])

    def test_matches_networkx(self, medium_dataset):
        graph = medium_dataset.citation_csr()
        source = 42
        ours = bfs_distances(graph, [source])
        oracle = nx.DiGraph()
        oracle.add_nodes_from(range(graph.num_nodes))
        src, dst, _ = graph.edge_array()
        oracle.add_edges_from(zip(src.tolist(), dst.tolist()))
        lengths = nx.single_source_shortest_path_length(oracle, source)
        for node in range(graph.num_nodes):
            expected = lengths.get(node, -1)
            assert ours[node] == expected


class TestReachableSet:
    def test_forward(self, chain_with_branch):
        assert reachable_set(chain_with_branch, [1]).tolist() == \
            [1, 2, 3, 4]

    def test_includes_sources(self, chain_with_branch):
        assert 5 in reachable_set(chain_with_branch, [5]).tolist()


class TestComponents:
    def test_two_components(self, chain_with_branch):
        components = weakly_connected_components(chain_with_branch)
        assert [len(c) for c in components] == [5, 1]
        assert components[0].tolist() == [0, 1, 2, 3, 4]
        assert components[1].tolist() == [5]

    def test_matches_networkx(self, small_dataset):
        graph = small_dataset.citation_csr()
        ours = {frozenset(c.tolist())
                for c in weakly_connected_components(graph)}
        oracle = nx.DiGraph()
        oracle.add_nodes_from(range(graph.num_nodes))
        src, dst, _ = graph.edge_array()
        oracle.add_edges_from(zip(src.tolist(), dst.tolist()))
        theirs = {frozenset(c)
                  for c in nx.weakly_connected_components(oracle)}
        assert ours == theirs


class TestCitationDepth:
    def test_chain_depth(self, chain_with_branch):
        assert citation_depth(chain_with_branch) == 3

    def test_empty(self):
        assert citation_depth(CSRGraph.from_edges([], nodes=[])) == 0

    def test_isolated_only(self):
        assert citation_depth(CSRGraph.from_edges([], nodes=[0, 1])) == 0
