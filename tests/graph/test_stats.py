"""Graph statistics tests."""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.stats import compute_stats, powerlaw_mle


class TestComputeStats:
    def test_hand_computed(self, diamond_graph):
        stats = compute_stats(diamond_graph.to_csr())
        assert stats.num_nodes == 4
        assert stats.num_edges == 4
        assert stats.density == pytest.approx(4 / 12)
        assert stats.num_dangling == 1  # node 4
        assert stats.num_isolated == 0
        assert stats.max_in_degree == 2
        assert stats.max_out_degree == 2
        assert stats.mean_in_degree == pytest.approx(1.0)
        assert stats.acyclic
        assert stats.forward_edges is None

    def test_isolated_nodes_counted(self):
        graph = CSRGraph.from_edges([(0, 1)], nodes=[0, 1, 2])
        stats = compute_stats(graph)
        assert stats.num_isolated == 1
        assert stats.num_dangling == 2  # nodes 1 and 2

    def test_forward_edges_with_years(self):
        graph = CSRGraph.from_edges([(0, 1), (1, 2)])
        stats = compute_stats(graph, years=np.array([2001, 2005, 2003]))
        # 0(2001) cites 1(2005): forward; 1(2005) cites 2(2003): fine.
        assert stats.forward_edges == 1

    def test_empty_graph(self):
        stats = compute_stats(CSRGraph.from_edges([], nodes=[]))
        assert stats.num_nodes == 0
        assert stats.density == 0.0
        assert np.isnan(stats.powerlaw_alpha)

    def test_as_row_keys_stable(self, diamond_graph):
        row = compute_stats(diamond_graph.to_csr()).as_row()
        assert "|V|" in row and "alpha" in row and row["DAG"] == "yes"


class TestPowerlawMle:
    def test_tracks_planted_exponent(self):
        # The discrete approximation is a diagnostic, not a precision
        # estimator: check it sits in the right neighbourhood and orders
        # heavier tails below lighter ones.
        rng = np.random.default_rng(0)
        u = rng.random(200_000)

        def estimate(alpha_true):
            sample = np.floor(
                0.5 * (1 - u) ** (-1 / (alpha_true - 1)) + 0.5)
            return powerlaw_mle(sample[sample >= 1], xmin=1)

        estimates = {alpha: estimate(alpha) for alpha in (2.0, 2.5, 3.0)}
        for alpha, value in estimates.items():
            assert abs(value - alpha) < 0.8
        assert estimates[2.0] < estimates[2.5] < estimates[3.0]

    def test_no_tail_gives_nan(self):
        assert np.isnan(powerlaw_mle(np.array([0, 0, 0]), xmin=1))

    def test_citation_graph_alpha_in_plausible_range(self, medium_dataset):
        graph = medium_dataset.citation_csr()
        stats = compute_stats(graph)
        assert 1.2 < stats.powerlaw_alpha < 3.5
