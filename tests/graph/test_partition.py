"""Partitioner tests: coverage, balance, cut accounting."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.graph.csr import CSRGraph
from repro.graph.partition import (
    Partition,
    bfs_partition,
    hash_partition,
    range_partition,
)


@pytest.fixture()
def chain_graph():
    return CSRGraph.from_edges([(i, i + 1) for i in range(19)])


class TestPartitionContainer:
    def test_validates_block_ids(self):
        with pytest.raises(PartitionError):
            Partition(np.array([0, 3]), num_blocks=2)
        with pytest.raises(PartitionError):
            Partition(np.array([-1, 0]), num_blocks=2)
        with pytest.raises(PartitionError):
            Partition(np.array([0]), num_blocks=0)

    def test_members_partition_all_nodes(self, chain_graph):
        part = range_partition(chain_graph, 4)
        seen = np.concatenate([part.members(b) for b in range(4)])
        assert sorted(seen.tolist()) == list(range(20))

    def test_members_bad_block(self, chain_graph):
        part = range_partition(chain_graph, 4)
        with pytest.raises(PartitionError):
            part.members(4)

    def test_block_sizes(self, chain_graph):
        part = range_partition(chain_graph, 4)
        assert part.block_sizes().sum() == 20

    def test_edge_cut_brute_force(self, chain_graph):
        part = hash_partition(chain_graph, 3, seed=1)
        expected = sum(
            1 for u, v, _ in chain_graph.edges()
            if part.assignment[u] != part.assignment[v])
        assert part.edge_cut(chain_graph) == expected

    def test_cut_fraction_empty_graph(self):
        graph = CSRGraph.from_edges([], nodes=[0, 1])
        part = range_partition(graph, 2)
        assert part.cut_fraction(graph) == 0.0


class TestRangePartition:
    def test_contiguous_and_balanced(self, chain_graph):
        part = range_partition(chain_graph, 4)
        assert part.block_sizes().tolist() == [5, 5, 5, 5]
        # contiguity: assignment must be non-decreasing
        assert (np.diff(part.assignment) >= 0).all()

    def test_chain_cut_is_minimal(self, chain_graph):
        part = range_partition(chain_graph, 4)
        assert part.edge_cut(chain_graph) == 3

    def test_invalid_blocks(self, chain_graph):
        with pytest.raises(PartitionError):
            range_partition(chain_graph, 0)


class TestHashPartition:
    def test_deterministic_given_seed(self, chain_graph):
        a = hash_partition(chain_graph, 4, seed=3)
        b = hash_partition(chain_graph, 4, seed=3)
        assert (a.assignment == b.assignment).all()

    def test_seed_changes_assignment(self, chain_graph):
        a = hash_partition(chain_graph, 4, seed=0)
        b = hash_partition(chain_graph, 4, seed=1)
        assert (a.assignment != b.assignment).any()

    def test_roughly_balanced(self):
        graph = CSRGraph.from_edges([], nodes=range(4000))
        part = hash_partition(graph, 4, seed=0)
        sizes = part.block_sizes()
        assert sizes.min() > 700
        assert sizes.max() < 1300


class TestBfsPartition:
    def test_covers_all_nodes(self, chain_graph):
        part = bfs_partition(chain_graph, 3, seed=5)
        assert (part.assignment >= 0).all()
        assert part.block_sizes().sum() == 20

    def test_locality_beats_hash_on_chain(self, chain_graph):
        bfs_cut = bfs_partition(chain_graph, 2, seed=0).edge_cut(chain_graph)
        hash_cut = hash_partition(chain_graph, 2, seed=0).edge_cut(
            chain_graph)
        assert bfs_cut <= hash_cut

    def test_handles_disconnected_graph(self):
        graph = CSRGraph.from_edges([(0, 1), (5, 6)], nodes=range(8))
        part = bfs_partition(graph, 2, seed=1)
        assert part.block_sizes().sum() == 8

    def test_empty_graph(self):
        graph = CSRGraph.from_edges([], nodes=[])
        part = bfs_partition(graph, 2)
        assert part.num_nodes == 0

    def test_deterministic(self, chain_graph):
        a = bfs_partition(chain_graph, 3, seed=9)
        b = bfs_partition(chain_graph, 3, seed=9)
        assert (a.assignment == b.assignment).all()
