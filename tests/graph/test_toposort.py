"""Topological sort and DAG utilities."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.csr import CSRGraph
from repro.graph.toposort import (
    dag_violations,
    is_dag,
    ragged_offsets,
    topological_levels,
    topological_sort,
)


def dag_edges_strategy(max_nodes=12, max_edges=40):
    """Random DAG edges: always i < j, so acyclic by construction."""
    pair = st.tuples(st.integers(0, max_nodes - 1),
                     st.integers(0, max_nodes - 1)).map(
        lambda p: (min(p), max(p))).filter(lambda p: p[0] != p[1])
    return st.lists(pair, min_size=0, max_size=max_edges)


class TestTopologicalSort:
    def test_diamond(self, diamond_graph):
        graph = diamond_graph.to_csr()
        order = topological_sort(graph)
        position = {node: i for i, node in enumerate(order)}
        for u, v, _ in graph.edges():
            assert position[u] < position[v]

    def test_cycle_returns_none(self, cyclic_graph):
        assert topological_sort(cyclic_graph.to_csr()) is None

    def test_deterministic_tie_break(self):
        graph = CSRGraph.from_edges([], nodes=[0, 1, 2, 3])
        assert topological_sort(graph) == [0, 1, 2, 3]

    def test_empty(self):
        graph = CSRGraph.from_edges([], nodes=[])
        assert topological_sort(graph) == []

    @settings(max_examples=40, deadline=None)
    @given(dag_edges_strategy())
    def test_random_dags_sortable_and_valid(self, edges):
        graph = CSRGraph.from_edges(edges, nodes=range(12))
        order = topological_sort(graph)
        assert order is not None
        assert sorted(order) == list(range(12))
        position = {node: i for i, node in enumerate(order)}
        for u, v in edges:
            assert position[u] < position[v]


class TestIsDag:
    def test_dag(self, diamond_graph):
        assert is_dag(diamond_graph.to_csr())

    def test_cyclic(self, cyclic_graph):
        assert not is_dag(cyclic_graph.to_csr())

    def test_self_loop_is_cyclic(self):
        graph = CSRGraph.from_edges([(0, 0)])
        assert not is_dag(graph)


class TestRaggedOffsets:
    def test_basic(self):
        assert ragged_offsets(np.array([3, 1, 2])).tolist() == \
            [0, 1, 2, 0, 0, 1]

    def test_zero_length_groups(self):
        assert ragged_offsets(np.array([2, 0, 0, 3])).tolist() == \
            [0, 1, 0, 1, 2]

    def test_empty(self):
        assert ragged_offsets(np.zeros(0, dtype=np.int64)).size == 0
        assert ragged_offsets(np.array([0, 0])).size == 0


class TestTopologicalLevels:
    def test_diamond(self, diamond_graph):
        graph = diamond_graph.to_csr()
        decomposition = topological_levels(graph)
        assert decomposition.acyclic
        assert decomposition.num_levels == 3
        assert not decomposition.cyclic_mask.any()
        # 1 -> {2, 3} -> 4 maps to indices 0 -> {1, 2} -> 3.
        assert decomposition.levels.tolist() == [0, 1, 1, 2]

    def test_every_edge_increases_level_on_dags(self):
        rng = np.random.default_rng(11)
        raw = rng.integers(0, 30, size=(120, 2))
        edges = [(int(min(a, b)), int(max(a, b)))
                 for a, b in raw if a != b]
        graph = CSRGraph.from_edges(edges, nodes=range(30))
        decomposition = topological_levels(graph)
        assert decomposition.acyclic
        levels = decomposition.levels
        for u, v in edges:
            assert levels[u] < levels[v]
        assert decomposition.num_levels == int(levels.max()) + 1

    def test_cyclic_graph_condenses(self, cyclic_graph):
        graph = cyclic_graph.to_csr()
        decomposition = topological_levels(graph)
        assert not decomposition.acyclic
        levels = decomposition.levels
        cyclic = decomposition.cyclic_mask
        # nodes 1,2,3 form the SCC; 5 feeds it; 4 hangs off it.
        scc = [graph.index_of(node) for node in (1, 2, 3)]
        assert cyclic[scc].all()
        assert not cyclic[graph.index_of(4)]
        assert not cyclic[graph.index_of(5)]
        assert len(set(levels[scc].tolist())) == 1
        assert levels[graph.index_of(5)] < levels[graph.index_of(1)]
        assert levels[graph.index_of(3)] < levels[graph.index_of(4)]
        # Intra-level edges exist only between cyclic-flagged nodes.
        for u, v, _ in graph.edges():
            if levels[u] == levels[v]:
                assert cyclic[u] and cyclic[v]
            else:
                assert levels[u] < levels[v]

    def test_matches_longest_path_semantics(self):
        # level(v) = longest path reaching v
        graph = CSRGraph.from_edges(
            [(0, 1), (1, 2), (0, 2), (2, 3)], nodes=range(4))
        assert topological_levels(graph).levels.tolist() == [0, 1, 2, 3]

    def test_empty(self):
        decomposition = topological_levels(
            CSRGraph.from_edges([], nodes=[]))
        assert decomposition.num_levels == 0
        assert decomposition.acyclic

    @settings(max_examples=40, deadline=None)
    @given(dag_edges_strategy())
    def test_consistent_with_topological_sort(self, edges):
        graph = CSRGraph.from_edges(edges, nodes=range(12))
        decomposition = topological_levels(graph)
        assert decomposition.acyclic
        order = topological_sort(graph)
        position = {node: i for i, node in enumerate(order)}
        for u, v in set(edges):
            assert decomposition.levels[u] < decomposition.levels[v]
            assert position[u] < position[v]


class TestDagViolations:
    def test_counts_forward_in_time_edges(self):
        graph = CSRGraph.from_edges([(0, 1), (1, 2), (2, 0)])
        years = np.array([2000, 1999, 1998])
        # 0->1 backward ok, 1->2 backward ok, 2->0 forward (1998 cites 2000)
        assert dag_violations(graph, years) == 1

    def test_zero_on_proper_citations(self, small_dataset):
        graph = small_dataset.citation_csr()
        years = small_dataset.article_years(graph)
        assert dag_violations(graph, years) == 0
