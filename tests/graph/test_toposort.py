"""Topological sort and DAG utilities."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.csr import CSRGraph
from repro.graph.toposort import dag_violations, is_dag, topological_sort


def dag_edges_strategy(max_nodes=12, max_edges=40):
    """Random DAG edges: always i < j, so acyclic by construction."""
    pair = st.tuples(st.integers(0, max_nodes - 1),
                     st.integers(0, max_nodes - 1)).map(
        lambda p: (min(p), max(p))).filter(lambda p: p[0] != p[1])
    return st.lists(pair, min_size=0, max_size=max_edges)


class TestTopologicalSort:
    def test_diamond(self, diamond_graph):
        graph = diamond_graph.to_csr()
        order = topological_sort(graph)
        position = {node: i for i, node in enumerate(order)}
        for u, v, _ in graph.edges():
            assert position[u] < position[v]

    def test_cycle_returns_none(self, cyclic_graph):
        assert topological_sort(cyclic_graph.to_csr()) is None

    def test_deterministic_tie_break(self):
        graph = CSRGraph.from_edges([], nodes=[0, 1, 2, 3])
        assert topological_sort(graph) == [0, 1, 2, 3]

    def test_empty(self):
        graph = CSRGraph.from_edges([], nodes=[])
        assert topological_sort(graph) == []

    @settings(max_examples=40, deadline=None)
    @given(dag_edges_strategy())
    def test_random_dags_sortable_and_valid(self, edges):
        graph = CSRGraph.from_edges(edges, nodes=range(12))
        order = topological_sort(graph)
        assert order is not None
        assert sorted(order) == list(range(12))
        position = {node: i for i, node in enumerate(order)}
        for u, v in edges:
            assert position[u] < position[v]


class TestIsDag:
    def test_dag(self, diamond_graph):
        assert is_dag(diamond_graph.to_csr())

    def test_cyclic(self, cyclic_graph):
        assert not is_dag(cyclic_graph.to_csr())

    def test_self_loop_is_cyclic(self):
        graph = CSRGraph.from_edges([(0, 0)])
        assert not is_dag(graph)


class TestDagViolations:
    def test_counts_forward_in_time_edges(self):
        graph = CSRGraph.from_edges([(0, 1), (1, 2), (2, 0)])
        years = np.array([2000, 1999, 1998])
        # 0->1 backward ok, 1->2 backward ok, 2->0 forward (1998 cites 2000)
        assert dag_violations(graph, years) == 1

    def test_zero_on_proper_citations(self, small_dataset):
        graph = small_dataset.citation_csr()
        years = small_dataset.article_years(graph)
        assert dag_violations(graph, years) == 0
