"""Rescaled PageRank tests."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.ranking.rescaled import rescale_by_age, rescaled_pagerank


class TestRescaleByAge:
    def test_zscore_within_single_window(self):
        scores = np.array([1.0, 2.0, 3.0])
        years = np.array([2000, 2001, 2002])
        rescaled = rescale_by_age(scores, years, window=3)
        # One window covering everything: plain z-scores.
        expected = (scores - scores.mean()) / scores.std()
        assert np.allclose(rescaled, expected)

    def test_removes_age_trend(self):
        # Strongly age-correlated scores: old articles score high.
        rng = np.random.default_rng(0)
        years = np.repeat(np.arange(2000, 2020), 50)
        trend = (2020.0 - years) * 10.0
        noise = rng.random(len(years))
        scores = trend + noise
        rescaled = rescale_by_age(scores, years, window=50)
        by_year_means = [rescaled[years == y].mean()
                         for y in range(2000, 2020)]
        # After rescaling no year dominates.
        assert max(by_year_means) - min(by_year_means) < 1.0

    def test_constant_window_gives_zero(self):
        rescaled = rescale_by_age(np.array([5.0, 5.0, 5.0]),
                                  np.array([2000, 2000, 2000]), window=3)
        assert rescaled.tolist() == [0.0, 0.0, 0.0]

    def test_window_clipped_at_bounds(self):
        scores = np.arange(10, dtype=float)
        years = np.arange(10)
        rescaled = rescale_by_age(scores, years, window=4)
        assert len(rescaled) == 10
        assert np.all(np.isfinite(rescaled))

    def test_validation(self):
        with pytest.raises(ConfigError):
            rescale_by_age(np.array([1.0]), np.array([1, 2]))
        with pytest.raises(ConfigError):
            rescale_by_age(np.array([1.0, 2.0]), np.array([1, 2]),
                           window=1)

    def test_empty(self):
        assert len(rescale_by_age(np.array([]), np.array([]),
                                  window=5)) == 0


class TestRescaledPagerank:
    def test_young_articles_can_win(self, small_dataset):
        from repro.ranking.pagerank import pagerank

        graph = small_dataset.citation_csr()
        years = small_dataset.article_years(graph)
        plain = pagerank(graph).scores
        rescaled = rescaled_pagerank(graph, years, window=200)

        _, max_year = small_dataset.year_range()
        young = years >= max_year - 3
        # Mean global rank of young articles must improve after rescaling.
        plain_rank = np.argsort(np.argsort(-plain))
        rescaled_rank = np.argsort(np.argsort(-rescaled))
        assert rescaled_rank[young].mean() < plain_rank[young].mean()

    def test_alignment_checked(self, small_dataset):
        graph = small_dataset.citation_csr()
        with pytest.raises(ConfigError):
            rescaled_pagerank(graph, np.array([2000]))
