"""PageRank engine tests, with networkx as the oracle."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, ConvergenceError
from repro.graph.csr import CSRGraph
from repro.ranking.pagerank import (
    build_transition,
    pagerank,
    validate_jump,
)


def nx_pagerank(edges, nodes, damping=0.85, personalization=None):
    oracle = nx.DiGraph()
    oracle.add_nodes_from(nodes)
    oracle.add_edges_from(edges)
    return nx.pagerank(oracle, alpha=damping, tol=1e-12, max_iter=500,
                       personalization=personalization)


class TestBasics:
    def test_scores_are_distribution(self, cyclic_graph):
        result = pagerank(cyclic_graph.to_csr())
        assert result.converged
        assert result.scores.sum() == pytest.approx(1.0)
        assert (result.scores >= 0).all()

    def test_cycle_is_uniform(self):
        graph = CSRGraph.from_edges([(0, 1), (1, 2), (2, 0)])
        result = pagerank(graph)
        assert np.allclose(result.scores, 1 / 3, atol=1e-9)

    def test_empty_graph(self):
        result = pagerank(CSRGraph.from_edges([], nodes=[]))
        assert result.converged
        assert len(result.scores) == 0

    def test_all_dangling(self):
        graph = CSRGraph.from_edges([], nodes=[0, 1, 2, 3])
        result = pagerank(graph)
        assert np.allclose(result.scores, 0.25)

    def test_matches_networkx(self):
        edges = [(0, 1), (0, 2), (1, 2), (2, 0), (3, 2), (4, 3), (4, 2)]
        graph = CSRGraph.from_edges(edges, nodes=range(5))
        result = pagerank(graph, tol=1e-12, max_iter=500)
        oracle = nx_pagerank(edges, range(5))
        for node, value in oracle.items():
            assert result.scores[graph.index_of(node)] == \
                pytest.approx(value, abs=1e-8)

    def test_matches_networkx_on_generated(self, small_dataset):
        graph = small_dataset.citation_csr()
        result = pagerank(graph, tol=1e-12, max_iter=500)
        edges = [(int(small_dataset.articles[u].id), v)
                 for u in small_dataset.articles
                 for v in small_dataset.articles[u].references
                 if v in small_dataset.articles]
        oracle = nx_pagerank(edges, sorted(small_dataset.articles))
        ours = {int(node): float(score)
                for node, score in zip(graph.node_ids, result.scores)}
        worst = max(abs(ours[k] - oracle[k]) for k in oracle)
        assert worst < 1e-8


class TestPersonalization:
    def test_jump_biases_scores(self):
        graph = CSRGraph.from_edges([(0, 1), (1, 0)], nodes=[0, 1, 2])
        jump = np.array([0.0, 0.0, 1.0])
        result = pagerank(graph, jump=jump)
        assert result.scores[2] > 1 / 3

    def test_jump_matches_networkx(self):
        edges = [(0, 1), (1, 2), (2, 0), (2, 1)]
        graph = CSRGraph.from_edges(edges, nodes=range(3))
        jump = np.array([0.7, 0.2, 0.1])
        result = pagerank(graph, jump=jump, tol=1e-12, max_iter=500)
        oracle = nx_pagerank(edges, range(3),
                             personalization={0: 0.7, 1: 0.2, 2: 0.1})
        for node, value in oracle.items():
            assert result.scores[node] == pytest.approx(value, abs=1e-8)

    def test_validate_jump_normalizes(self):
        jump = validate_jump(np.array([2.0, 2.0]), 2)
        assert jump.tolist() == [0.5, 0.5]

    @pytest.mark.parametrize("bad", [
        np.array([1.0]),            # wrong shape
        np.array([-1.0, 2.0]),      # negative
        np.array([0.0, 0.0]),       # zero mass
        np.array([np.inf, 1.0]),    # non-finite
    ])
    def test_validate_jump_rejects(self, bad):
        with pytest.raises(ConfigError):
            validate_jump(bad, 2)


class TestEdgeWeights:
    def test_weights_shift_mass(self):
        graph = CSRGraph.from_edges([(0, 1), (0, 2)])
        heavy_to_1 = pagerank(graph,
                              edge_weights=np.array([9.0, 1.0])).scores
        assert heavy_to_1[1] > heavy_to_1[2]

    def test_zero_out_weights_make_dangling(self):
        graph = CSRGraph.from_edges([(0, 1)], nodes=[0, 1])
        _, dangling = build_transition(graph,
                                       np.array([0.0]))
        assert dangling.tolist() == [True, True]

    def test_weight_shape_mismatch(self):
        graph = CSRGraph.from_edges([(0, 1)])
        with pytest.raises(ConfigError):
            pagerank(graph, edge_weights=np.array([1.0, 2.0]))

    def test_negative_weight_rejected(self):
        graph = CSRGraph.from_edges([(0, 1)])
        with pytest.raises(ConfigError):
            pagerank(graph, edge_weights=np.array([-1.0]))


class TestWarmStart:
    def test_warm_start_converges_faster(self, medium_dataset):
        graph = medium_dataset.citation_csr()
        cold = pagerank(graph, tol=1e-12)
        warm = pagerank(graph, tol=1e-12, initial=cold.scores)
        assert warm.iterations < cold.iterations
        assert np.abs(warm.scores - cold.scores).sum() < 1e-9

    def test_initial_validation(self):
        graph = CSRGraph.from_edges([(0, 1)])
        with pytest.raises(ConfigError):
            pagerank(graph, initial=np.array([1.0]))
        with pytest.raises(ConfigError):
            pagerank(graph, initial=np.array([0.0, 0.0]))


class TestConfigErrors:
    @pytest.mark.parametrize("kwargs", [
        {"damping": 1.0},
        {"damping": -0.1},
        {"tol": 0.0},
        {"max_iter": 0},
    ])
    def test_invalid_parameters(self, kwargs):
        graph = CSRGraph.from_edges([(0, 1)])
        with pytest.raises(ConfigError):
            pagerank(graph, **kwargs)

    def test_raise_on_divergence(self):
        graph = CSRGraph.from_edges([(0, 1), (1, 0), (1, 2), (2, 0)])
        with pytest.raises(ConvergenceError):
            pagerank(graph, tol=1e-15, max_iter=2,
                     raise_on_divergence=True)

    def test_non_converged_flagged(self):
        graph = CSRGraph.from_edges([(0, 1), (1, 0), (1, 2), (2, 0)])
        result = pagerank(graph, tol=1e-15, max_iter=2)
        assert not result.converged
        assert result.iterations == 2


class TestProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)),
                    min_size=0, max_size=30))
    def test_always_a_distribution(self, edges):
        graph = CSRGraph.from_edges(edges, nodes=range(10))
        result = pagerank(graph, max_iter=500)
        assert result.scores.sum() == pytest.approx(1.0)
        assert (result.scores >= 0).all()
        # Uniform jump guarantees every node at least (1-d)/n.
        assert result.scores.min() >= 0.15 / 10 - 1e-9
