"""CiteRank tests."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.graph.csr import CSRGraph
from repro.ranking.citerank import citerank
from repro.ranking.pagerank import pagerank


@pytest.fixture()
def chain():
    # 2 cites 1 cites 0; years 2000, 2005, 2010.
    graph = CSRGraph.from_edges([(1, 0), (2, 1)], nodes=[0, 1, 2])
    years = np.array([2000, 2005, 2010])
    return graph, years


class TestCiteRank:
    def test_equals_personalized_pagerank(self, chain):
        graph, years = chain
        tau = 3.0
        ours = citerank(graph, years, 2010, tau=tau, tol=1e-13)
        jump = np.exp(-(2010 - years) / tau)
        oracle = pagerank(graph, damping=0.5, jump=jump, tol=1e-13,
                          max_iter=500)
        assert np.abs(ours.scores - oracle.scores).sum() < 1e-10

    def test_large_tau_approaches_uniform_jump(self, chain):
        graph, years = chain
        ours = citerank(graph, years, 2010, tau=1e9, tol=1e-13)
        uniform = pagerank(graph, damping=0.5, tol=1e-13, max_iter=500)
        assert np.abs(ours.scores - uniform.scores).sum() < 1e-6

    def test_small_tau_rewards_recently_discovered(self, chain):
        graph, years = chain
        scores = citerank(graph, years, 2010, tau=1.0).scores
        # The reader starts almost surely at the 2010 paper; the 2005
        # paper receives its forwarded traffic; 2000 is two hops away.
        assert scores[2] > scores[0]

    def test_distribution(self, small_dataset):
        graph = small_dataset.citation_csr()
        years = small_dataset.article_years(graph)
        result = citerank(graph, years, int(years.max()))
        assert result.converged
        assert result.scores.sum() == pytest.approx(1.0)

    def test_validation(self, chain):
        graph, years = chain
        with pytest.raises(ConfigError):
            citerank(graph, years, 2010, tau=0.0)
        with pytest.raises(ConfigError):
            citerank(graph, years[:2], 2010)
        with pytest.raises(ConfigError):
            citerank(graph, years, 2005)  # precedes newest article
