"""Citation count, citation rate, recency and venue-mean baselines."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.graph.csr import CSRGraph
from repro.ranking.citation_count import citation_count
from repro.ranking.simple import citation_rate, recency_score, venue_mean


class TestCitationCount:
    def test_counts_in_edges(self, tiny_dataset):
        graph = tiny_dataset.citation_csr()
        counts = citation_count(graph)
        assert counts[graph.index_of(0)] == 2
        assert counts[graph.index_of(1)] == 2
        assert counts[graph.index_of(4)] == 0

    def test_float_dtype(self, diamond_graph):
        assert citation_count(diamond_graph.to_csr()).dtype == np.float64


class TestCitationRate:
    def test_hand_computed(self):
        graph = CSRGraph.from_edges([(1, 0)], nodes=[0, 1])
        years = np.array([2000, 2010])
        rate = citation_rate(graph, years, observation_year=2010)
        assert rate[0] == pytest.approx(1 / 11)
        assert rate[1] == 0.0

    def test_alignment_checked(self):
        graph = CSRGraph.from_edges([(1, 0)])
        with pytest.raises(ConfigError):
            citation_rate(graph, np.array([2000]), 2010)

    def test_future_observation_rejected(self):
        graph = CSRGraph.from_edges([(1, 0)])
        with pytest.raises(ConfigError):
            citation_rate(graph, np.array([2000, 2010]), 2005)


class TestRecency:
    def test_half_life(self):
        years = np.array([2010, 2005, 2000])
        scores = recency_score(years, 2010, half_life=5.0)
        assert scores[0] == pytest.approx(1.0)
        assert scores[1] == pytest.approx(0.5)
        assert scores[2] == pytest.approx(0.25)

    def test_half_life_positive(self):
        with pytest.raises(ConfigError):
            recency_score(np.array([2000]), 2010, half_life=0)

    def test_future_years_rejected(self):
        with pytest.raises(ConfigError):
            recency_score(np.array([2020]), 2010)


class TestVenueMean:
    def test_mean_per_venue(self):
        venue_of = np.array([0, 0, 1, 1])
        base = np.array([1.0, 3.0, 10.0, 20.0])
        scores = venue_mean(venue_of, base)
        assert scores.tolist() == [2.0, 2.0, 15.0, 15.0]

    def test_venueless_keep_own_score(self):
        venue_of = np.array([0, -1])
        base = np.array([4.0, 7.0])
        scores = venue_mean(venue_of, base)
        assert scores.tolist() == [4.0, 7.0]

    def test_all_venueless(self):
        scores = venue_mean(np.array([-1, -1]), np.array([1.0, 2.0]))
        assert scores.tolist() == [1.0, 2.0]

    def test_alignment_checked(self):
        with pytest.raises(ConfigError):
            venue_mean(np.array([0]), np.array([1.0, 2.0]))
