"""FutureRank tests."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.graph.csr import CSRGraph
from repro.ranking.futurerank import FutureRankConfig, futurerank


@pytest.fixture()
def small_setup():
    # 3 papers: 2 cites 0 and 1; authors: paper0&2 share author 0.
    graph = CSRGraph.from_edges([(2, 0), (2, 1)], nodes=[0, 1, 2])
    years = np.array([2000, 2000, 2008])
    author_lists = [[0], [1], [0, 1]]
    return graph, years, author_lists


class TestConfig:
    @pytest.mark.parametrize("kwargs", [
        {"alpha": -0.1},
        {"alpha": 0.6, "beta": 0.3, "gamma": 0.3},
        {"rho": 0.0},
        {"tol": 0.0},
        {"max_iter": 0},
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            FutureRankConfig(**kwargs)

    def test_defaults_valid(self):
        config = FutureRankConfig()
        assert config.alpha + config.beta + config.gamma <= 1.0


class TestFutureRank:
    def test_returns_distributions(self, small_setup):
        graph, years, author_lists = small_setup
        papers, authors = futurerank(graph, author_lists, 2, years, 2008)
        assert papers.sum() == pytest.approx(1.0)
        assert authors.sum() == pytest.approx(1.0)
        assert (papers >= 0).all() and (authors >= 0).all()

    def test_time_factor_rewards_recent(self, small_setup):
        graph, years, author_lists = small_setup
        config = FutureRankConfig(alpha=0.0, beta=0.0, gamma=1.0)
        papers, _ = futurerank(graph, author_lists, 2, years, 2008,
                               config=config)
        assert papers[2] > papers[0]

    def test_citation_part_rewards_cited(self, small_setup):
        graph, years, author_lists = small_setup
        config = FutureRankConfig(alpha=0.9, beta=0.0, gamma=0.0)
        papers, _ = futurerank(graph, author_lists, 2, years, 2008,
                               config=config)
        assert papers[0] > papers[2]
        assert papers[0] == pytest.approx(papers[1])

    def test_author_coupling(self, small_setup):
        graph, years, author_lists = small_setup
        # Author-only: good papers lift their authors' other papers.
        config = FutureRankConfig(alpha=0.0, beta=0.5, gamma=0.0)
        papers, authors = futurerank(graph, author_lists, 2, years, 2008,
                                     config=config)
        assert authors.sum() == pytest.approx(1.0)

    def test_author_index_out_of_range(self, small_setup):
        graph, years, _ = small_setup
        with pytest.raises(ConfigError):
            futurerank(graph, [[0], [5], [0]], 2, years, 2008)

    def test_alignment_validated(self, small_setup):
        graph, years, author_lists = small_setup
        with pytest.raises(ConfigError):
            futurerank(graph, author_lists[:2], 2, years, 2008)
        with pytest.raises(ConfigError):
            futurerank(graph, author_lists, 2, years[:2], 2008)
        with pytest.raises(ConfigError):
            futurerank(graph, author_lists, 2, years, 2000)

    def test_on_generated_dataset(self, small_dataset):
        graph = small_dataset.citation_csr()
        years = small_dataset.article_years(graph)
        author_index = {a: i
                        for i, a in enumerate(sorted(small_dataset.authors))}
        author_lists = [
            [author_index[a]
             for a in small_dataset.articles[int(i)].author_ids]
            for i in graph.node_ids]
        papers, authors = futurerank(graph, author_lists,
                                     len(author_index), years,
                                     int(years.max()))
        assert papers.sum() == pytest.approx(1.0)
        assert len(authors) == len(author_index)

    def test_empty_graph(self):
        graph = CSRGraph.from_edges([], nodes=[])
        papers, authors = futurerank(graph, [], 3, np.array([]), 2000)
        assert len(papers) == 0
        assert len(authors) == 3


class TestWeightGuard:
    def test_negative_edge_weights_rejected(self, small_setup):
        _, years, author_lists = small_setup
        graph = CSRGraph.from_edges([(2, 0), (2, 1)], nodes=[0, 1, 2],
                                    weights=[-0.5, 1.0])
        with pytest.raises(ConfigError,
                           match="finite and non-negative"):
            futurerank(graph, author_lists, 2, years, 2008)

    def test_non_finite_edge_weights_rejected(self, small_setup):
        _, years, author_lists = small_setup
        graph = CSRGraph.from_edges([(2, 0), (2, 1)], nodes=[0, 1, 2],
                                    weights=[1.0, np.nan])
        with pytest.raises(ConfigError,
                           match="finite and non-negative"):
            futurerank(graph, author_lists, 2, years, 2008)
