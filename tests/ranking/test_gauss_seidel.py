"""Gauss–Seidel PageRank: fixed-point agreement and sweep ordering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.graph.csr import CSRGraph
from repro.ranking.gauss_seidel import gauss_seidel_pagerank, influence_order
from repro.ranking.pagerank import pagerank


class TestInfluenceOrder:
    def test_dag_sources_first(self, diamond_graph):
        graph = diamond_graph.to_csr()
        order = influence_order(graph)
        position = {node: i for i, node in enumerate(order)}
        for u, v, _ in graph.edges():
            assert position[u] < position[v]

    def test_cyclic_graph_uses_condensation(self, cyclic_graph):
        graph = cyclic_graph.to_csr()
        order = influence_order(graph)
        assert sorted(order.tolist()) == list(range(graph.num_nodes))
        # Node 5 feeds the cycle, node 4 drains it: 5 first, 4 last.
        position = {node: i for i, node in enumerate(order)}
        assert position[graph.index_of(5)] < position[graph.index_of(1)]
        assert position[graph.index_of(4)] > position[graph.index_of(3)]


class TestFixedPoint:
    def test_matches_power_iteration_dag(self, diamond_graph):
        graph = diamond_graph.to_csr()
        power = pagerank(graph, tol=1e-13, max_iter=500)
        sweep = gauss_seidel_pagerank(graph, tol=1e-13)
        assert np.abs(power.scores - sweep.scores).sum() < 1e-9

    def test_matches_power_iteration_cyclic(self, cyclic_graph):
        graph = cyclic_graph.to_csr()
        power = pagerank(graph, tol=1e-13, max_iter=500)
        sweep = gauss_seidel_pagerank(graph, tol=1e-13)
        assert np.abs(power.scores - sweep.scores).sum() < 1e-9

    def test_matches_on_generated(self, small_dataset):
        graph = small_dataset.citation_csr()
        power = pagerank(graph, tol=1e-12, max_iter=500)
        sweep = gauss_seidel_pagerank(graph, tol=1e-12)
        assert np.abs(power.scores - sweep.scores).sum() < 1e-8

    def test_dag_converges_in_few_sweeps(self, small_dataset):
        graph = small_dataset.citation_csr()
        power = pagerank(graph, tol=1e-10, max_iter=500)
        sweep = gauss_seidel_pagerank(graph, tol=1e-10)
        assert sweep.iterations < power.iterations / 3

    def test_weighted_edges(self):
        graph = CSRGraph.from_edges([(0, 1), (0, 2), (1, 2)])
        weights = np.array([3.0, 1.0, 1.0])
        power = pagerank(graph, edge_weights=weights, tol=1e-13,
                         max_iter=500)
        sweep = gauss_seidel_pagerank(graph, edge_weights=weights,
                                      tol=1e-13)
        assert np.abs(power.scores - sweep.scores).sum() < 1e-9

    def test_personalized(self):
        graph = CSRGraph.from_edges([(0, 1), (1, 2), (2, 0)])
        jump = np.array([0.6, 0.3, 0.1])
        power = pagerank(graph, jump=jump, tol=1e-13, max_iter=500)
        sweep = gauss_seidel_pagerank(graph, jump=jump, tol=1e-13)
        assert np.abs(power.scores - sweep.scores).sum() < 1e-9

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 7), st.integers(0, 7)),
                    min_size=1, max_size=25))
    def test_agreement_on_random_graphs(self, edges):
        graph = CSRGraph.from_edges(edges, nodes=range(8))
        power = pagerank(graph, tol=1e-13, max_iter=1000)
        sweep = gauss_seidel_pagerank(graph, tol=1e-13, max_sweeps=1000)
        assert np.abs(power.scores - sweep.scores).sum() < 1e-8


def _random_graph(n, m, *, cyclic, weighted=False, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.integers(0, n, m)
    b = rng.integers(0, n, m)
    keep = a != b
    a, b = a[keep], b[keep]
    if not cyclic:
        a, b = np.minimum(a, b), np.maximum(a, b)
    weights = (rng.random(len(a)) + 0.05).tolist() if weighted else None
    return CSRGraph.from_edges(zip(a.tolist(), b.tolist()),
                               nodes=range(n), weights=weights)


class TestLevelKernel:
    """The batched ``levels`` kernel vs the per-node reference sweep."""

    def _parity(self, graph, **kwargs):
        reference = gauss_seidel_pagerank(graph, kernel="pernode",
                                          **kwargs)
        batched = gauss_seidel_pagerank(graph, kernel="levels", **kwargs)
        assert batched.iterations == reference.iterations
        assert batched.converged == reference.converged
        # Same sweep semantics; only float summation order differs.
        assert np.abs(batched.scores - reference.scores).max() < 1e-12
        return reference, batched

    def test_parity_dag(self):
        self._parity(_random_graph(300, 2500, cyclic=False, seed=1))

    def test_parity_cyclic_scc_condensation(self):
        reference, batched = self._parity(
            _random_graph(120, 700, cyclic=True, seed=2))
        # SCC members run through the identical per-node path, so a
        # cyclic-dominated graph agrees bitwise.
        assert np.array_equal(reference.scores, batched.scores)

    def test_parity_weighted(self):
        self._parity(_random_graph(300, 2500, cyclic=False,
                                   weighted=True, seed=3))

    def test_parity_dangling_heavy(self):
        # A long chain into a node plus many isolated (dangling) nodes.
        edges = [(i, i + 1) for i in range(20)]
        graph = CSRGraph.from_edges(edges, nodes=range(200))
        self._parity(graph)

    def test_parity_small_dataset(self, small_dataset):
        self._parity(small_dataset.citation_csr())

    def test_parity_personalized_jump_and_initial(self):
        graph = _random_graph(60, 300, cyclic=False, seed=4)
        rng = np.random.default_rng(5)
        jump = rng.random(60) + 0.01
        jump /= jump.sum()
        initial = rng.random(60) + 0.01
        self._parity(graph, jump=jump, initial=initial)

    def test_auto_selects_levels_by_default(self, small_dataset):
        graph = small_dataset.citation_csr()
        auto = gauss_seidel_pagerank(graph)
        levels = gauss_seidel_pagerank(graph, kernel="levels")
        assert np.array_equal(auto.scores, levels.scores)

    def test_auto_with_custom_order_uses_pernode(self, diamond_graph):
        graph = diamond_graph.to_csr()
        order = influence_order(graph).tolist()
        explicit = gauss_seidel_pagerank(graph, kernel="pernode",
                                         order=order)
        auto = gauss_seidel_pagerank(graph, order=order)
        assert np.array_equal(auto.scores, explicit.scores)

    def test_levels_rejects_custom_order(self, diamond_graph):
        with pytest.raises(ConfigError):
            gauss_seidel_pagerank(diamond_graph.to_csr(),
                                  kernel="levels", order=[3, 2, 1, 0])

    def test_unknown_kernel_rejected(self, diamond_graph):
        with pytest.raises(ConfigError):
            gauss_seidel_pagerank(diamond_graph.to_csr(),
                                  kernel="segmented")

    def test_levels_telemetry_counter(self, small_dataset):
        from repro.obs.telemetry import SolverTelemetry
        telemetry = SolverTelemetry()
        gauss_seidel_pagerank(small_dataset.citation_csr(),
                              telemetry=telemetry)
        assert telemetry.counters["levels"] >= 1


class TestEdgeWeightGuard:
    """All solvers share one edge-weight guard (finite, non-negative)."""

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -1.0])
    def test_gauss_seidel_rejects(self, diamond_graph, bad):
        graph = diamond_graph.to_csr()
        weights = graph.weights.copy()
        weights[0] = bad
        with pytest.raises(ConfigError):
            gauss_seidel_pagerank(graph, edge_weights=weights)

    def test_shape_mismatch_rejected(self, diamond_graph):
        graph = diamond_graph.to_csr()
        with pytest.raises(ConfigError):
            gauss_seidel_pagerank(graph,
                                  edge_weights=np.ones(graph.num_edges
                                                       + 1))


class TestValidation:
    def test_custom_order_used(self, diamond_graph):
        graph = diamond_graph.to_csr()
        result = gauss_seidel_pagerank(graph, order=[3, 2, 1, 0])
        assert result.converged

    def test_bad_order_rejected(self, diamond_graph):
        graph = diamond_graph.to_csr()
        with pytest.raises(ConfigError):
            gauss_seidel_pagerank(graph, order=[0, 0, 1, 2])

    @pytest.mark.parametrize("kwargs", [
        {"damping": 1.0}, {"tol": 0}, {"max_sweeps": 0},
    ])
    def test_invalid_parameters(self, kwargs, diamond_graph):
        with pytest.raises(ConfigError):
            gauss_seidel_pagerank(diamond_graph.to_csr(), **kwargs)

    def test_empty_graph(self):
        result = gauss_seidel_pagerank(CSRGraph.from_edges([], nodes=[]))
        assert result.converged
