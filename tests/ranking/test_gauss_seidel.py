"""Gauss–Seidel PageRank: fixed-point agreement and sweep ordering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.graph.csr import CSRGraph
from repro.ranking.gauss_seidel import gauss_seidel_pagerank, influence_order
from repro.ranking.pagerank import pagerank


class TestInfluenceOrder:
    def test_dag_sources_first(self, diamond_graph):
        graph = diamond_graph.to_csr()
        order = influence_order(graph)
        position = {node: i for i, node in enumerate(order)}
        for u, v, _ in graph.edges():
            assert position[u] < position[v]

    def test_cyclic_graph_uses_condensation(self, cyclic_graph):
        graph = cyclic_graph.to_csr()
        order = influence_order(graph)
        assert sorted(order.tolist()) == list(range(graph.num_nodes))
        # Node 5 feeds the cycle, node 4 drains it: 5 first, 4 last.
        position = {node: i for i, node in enumerate(order)}
        assert position[graph.index_of(5)] < position[graph.index_of(1)]
        assert position[graph.index_of(4)] > position[graph.index_of(3)]


class TestFixedPoint:
    def test_matches_power_iteration_dag(self, diamond_graph):
        graph = diamond_graph.to_csr()
        power = pagerank(graph, tol=1e-13, max_iter=500)
        sweep = gauss_seidel_pagerank(graph, tol=1e-13)
        assert np.abs(power.scores - sweep.scores).sum() < 1e-9

    def test_matches_power_iteration_cyclic(self, cyclic_graph):
        graph = cyclic_graph.to_csr()
        power = pagerank(graph, tol=1e-13, max_iter=500)
        sweep = gauss_seidel_pagerank(graph, tol=1e-13)
        assert np.abs(power.scores - sweep.scores).sum() < 1e-9

    def test_matches_on_generated(self, small_dataset):
        graph = small_dataset.citation_csr()
        power = pagerank(graph, tol=1e-12, max_iter=500)
        sweep = gauss_seidel_pagerank(graph, tol=1e-12)
        assert np.abs(power.scores - sweep.scores).sum() < 1e-8

    def test_dag_converges_in_few_sweeps(self, small_dataset):
        graph = small_dataset.citation_csr()
        power = pagerank(graph, tol=1e-10, max_iter=500)
        sweep = gauss_seidel_pagerank(graph, tol=1e-10)
        assert sweep.iterations < power.iterations / 3

    def test_weighted_edges(self):
        graph = CSRGraph.from_edges([(0, 1), (0, 2), (1, 2)])
        weights = np.array([3.0, 1.0, 1.0])
        power = pagerank(graph, edge_weights=weights, tol=1e-13,
                         max_iter=500)
        sweep = gauss_seidel_pagerank(graph, edge_weights=weights,
                                      tol=1e-13)
        assert np.abs(power.scores - sweep.scores).sum() < 1e-9

    def test_personalized(self):
        graph = CSRGraph.from_edges([(0, 1), (1, 2), (2, 0)])
        jump = np.array([0.6, 0.3, 0.1])
        power = pagerank(graph, jump=jump, tol=1e-13, max_iter=500)
        sweep = gauss_seidel_pagerank(graph, jump=jump, tol=1e-13)
        assert np.abs(power.scores - sweep.scores).sum() < 1e-9

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 7), st.integers(0, 7)),
                    min_size=1, max_size=25))
    def test_agreement_on_random_graphs(self, edges):
        graph = CSRGraph.from_edges(edges, nodes=range(8))
        power = pagerank(graph, tol=1e-13, max_iter=1000)
        sweep = gauss_seidel_pagerank(graph, tol=1e-13, max_sweeps=1000)
        assert np.abs(power.scores - sweep.scores).sum() < 1e-8


class TestValidation:
    def test_custom_order_used(self, diamond_graph):
        graph = diamond_graph.to_csr()
        result = gauss_seidel_pagerank(graph, order=[3, 2, 1, 0])
        assert result.converged

    def test_bad_order_rejected(self, diamond_graph):
        graph = diamond_graph.to_csr()
        with pytest.raises(ConfigError):
            gauss_seidel_pagerank(graph, order=[0, 0, 1, 2])

    @pytest.mark.parametrize("kwargs", [
        {"damping": 1.0}, {"tol": 0}, {"max_sweeps": 0},
    ])
    def test_invalid_parameters(self, kwargs, diamond_graph):
        with pytest.raises(ConfigError):
            gauss_seidel_pagerank(diamond_graph.to_csr(), **kwargs)

    def test_empty_graph(self):
        result = gauss_seidel_pagerank(CSRGraph.from_edges([], nodes=[]))
        assert result.converged
