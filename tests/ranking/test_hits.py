"""HITS tests, with networkx as the oracle."""

import networkx as nx
import numpy as np
import pytest

from repro.errors import ConfigError, ConvergenceError
from repro.graph.csr import CSRGraph
from repro.ranking.hits import hits


class TestHits:
    def test_star_authority(self):
        # Many hubs pointing at one authority.
        graph = CSRGraph.from_edges([(1, 0), (2, 0), (3, 0)])
        result = hits(graph)
        assert result.converged
        assert result.authorities[0] == pytest.approx(1.0)
        assert result.hubs[0] == pytest.approx(0.0, abs=1e-9)
        assert np.allclose(result.hubs[1:], result.hubs[1])

    def test_matches_networkx(self):
        edges = [(0, 1), (0, 2), (1, 2), (2, 0), (3, 2), (3, 1)]
        graph = CSRGraph.from_edges(edges, nodes=range(4))
        result = hits(graph, tol=1e-12, max_iter=1000)
        oracle = nx.DiGraph(edges)
        oracle.add_nodes_from(range(4))
        nx_hubs, nx_auth = nx.hits(oracle, max_iter=1000, tol=1e-12)
        # networkx normalizes by sum; ours by L2 — compare shapes.
        ours_auth = result.authorities / result.authorities.sum()
        for node in range(4):
            assert ours_auth[node] == pytest.approx(nx_auth[node],
                                                    abs=1e-6)

    def test_empty_graph(self):
        result = hits(CSRGraph.from_edges([], nodes=[]))
        assert result.converged
        assert len(result.authorities) == 0

    def test_no_edges(self):
        result = hits(CSRGraph.from_edges([], nodes=[0, 1]))
        # Degenerate: vectors go to zero after one step, then stabilize.
        assert result.iterations >= 1

    def test_validation(self):
        graph = CSRGraph.from_edges([(0, 1)])
        with pytest.raises(ConfigError):
            hits(graph, tol=0)
        with pytest.raises(ConfigError):
            hits(graph, max_iter=0)

    def test_raise_on_divergence(self):
        graph = CSRGraph.from_edges([(0, 1), (1, 0), (1, 2)])
        with pytest.raises(ConvergenceError):
            hits(graph, tol=1e-16, max_iter=1, raise_on_divergence=True)

    def test_negative_edge_weights_rejected(self):
        graph = CSRGraph.from_edges([(0, 1), (1, 2)], nodes=range(3),
                                    weights=[1.0, -0.5])
        with pytest.raises(ConfigError,
                           match="finite and non-negative"):
            hits(graph)

    def test_non_finite_edge_weights_rejected(self):
        graph = CSRGraph.from_edges([(0, 1), (1, 2)], nodes=range(3),
                                    weights=[1.0, np.nan])
        with pytest.raises(ConfigError,
                           match="finite and non-negative"):
            hits(graph)
