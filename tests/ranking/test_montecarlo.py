"""Monte-Carlo PageRank tests."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.graph.csr import CSRGraph
from repro.ranking.montecarlo import monte_carlo_pagerank
from repro.ranking.pagerank import pagerank


class TestMonteCarlo:
    def test_approximates_power_iteration(self, small_dataset):
        graph = small_dataset.citation_csr()
        exact = pagerank(graph).scores
        estimate = monte_carlo_pagerank(graph, walks_per_node=100,
                                        seed=1).scores
        assert np.abs(estimate - exact).sum() < 0.05

    def test_error_shrinks_with_budget(self, small_dataset):
        graph = small_dataset.citation_csr()
        exact = pagerank(graph).scores
        coarse = monte_carlo_pagerank(graph, walks_per_node=5,
                                      seed=2).scores
        fine = monte_carlo_pagerank(graph, walks_per_node=200,
                                    seed=2).scores
        assert np.abs(fine - exact).sum() < np.abs(coarse - exact).sum()

    def test_is_distribution(self, small_dataset):
        graph = small_dataset.citation_csr()
        result = monte_carlo_pagerank(graph, walks_per_node=10, seed=0)
        assert result.scores.sum() == pytest.approx(1.0)
        assert (result.scores >= 0).all()
        assert result.walks == graph.num_nodes * 10

    def test_deterministic_given_seed(self, diamond_graph):
        graph = diamond_graph.to_csr()
        a = monte_carlo_pagerank(graph, walks_per_node=50, seed=7)
        b = monte_carlo_pagerank(graph, walks_per_node=50, seed=7)
        assert np.array_equal(a.scores, b.scores)

    def test_deterministic_given_seed_with_dangling(self,
                                                    small_dataset):
        # Same property on a realistic graph (dangling nodes included):
        # equal seeds must agree bit for bit, walk for walk.
        graph = small_dataset.citation_csr()
        a = monte_carlo_pagerank(graph, walks_per_node=25, seed=123)
        b = monte_carlo_pagerank(graph, walks_per_node=25, seed=123)
        assert np.array_equal(a.scores, b.scores)
        assert a.walks == b.walks
        assert a.steps == b.steps

    def test_seed_actually_matters(self, small_dataset):
        graph = small_dataset.citation_csr()
        a = monte_carlo_pagerank(graph, walks_per_node=25, seed=123)
        c = monte_carlo_pagerank(graph, walks_per_node=25, seed=124)
        assert not np.array_equal(a.scores, c.scores)

    def test_all_dangling_uniform(self):
        graph = CSRGraph.from_edges([], nodes=[0, 1, 2])
        result = monte_carlo_pagerank(graph, walks_per_node=10, seed=0)
        assert np.allclose(result.scores, 1 / 3)
        assert result.steps == 0

    def test_empty_graph(self):
        result = monte_carlo_pagerank(CSRGraph.from_edges([], nodes=[]),
                                      walks_per_node=5)
        assert len(result.scores) == 0

    @pytest.mark.parametrize("kwargs", [
        {"walks_per_node": 0}, {"damping": 1.0}, {"max_length": 0},
    ])
    def test_validation(self, diamond_graph, kwargs):
        with pytest.raises(ConfigError):
            monte_carlo_pagerank(diamond_graph.to_csr(), **kwargs)
