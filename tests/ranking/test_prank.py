"""P-Rank tests."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.graph.csr import CSRGraph
from repro.ranking.prank import PRankConfig, prank


@pytest.fixture()
def setup():
    # 2 cites 0 and 1; venues: papers 0,2 in venue 0; paper 1 in venue 1.
    graph = CSRGraph.from_edges([(2, 0), (2, 1)], nodes=[0, 1, 2])
    author_lists = [[0], [1], [0, 1]]
    venue_of = np.array([0, 1, 0])
    return graph, author_lists, venue_of


class TestConfig:
    @pytest.mark.parametrize("kwargs", [
        {"alpha": -0.1},
        {"alpha": 0.5, "beta": 0.3, "gamma": 0.3},
        {"tol": 0}, {"max_iter": 0},
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            PRankConfig(**kwargs)


class TestPRank:
    def test_distributions(self, setup):
        graph, author_lists, venue_of = setup
        papers, authors, venues = prank(graph, author_lists, 2,
                                        venue_of, 2)
        assert papers.sum() == pytest.approx(1.0)
        assert authors.sum() == pytest.approx(1.0)
        assert venues.sum() == pytest.approx(1.0)

    def test_citation_only_matches_intuition(self, setup):
        graph, author_lists, venue_of = setup
        config = PRankConfig(alpha=0.85, beta=0.0, gamma=0.0)
        papers, _, _ = prank(graph, author_lists, 2, venue_of, 2,
                             config=config)
        assert papers[0] > papers[2]
        assert papers[0] == pytest.approx(papers[1])

    def test_venue_channel_equalizes_covenue_papers(self, setup):
        graph, author_lists, venue_of = setup
        # Venue-only propagation: papers sharing a venue receive equal
        # venue contributions, so papers 0 and 2 (both venue 0) tie.
        config = PRankConfig(alpha=0.0, beta=0.0, gamma=0.9)
        papers, _, venues = prank(graph, author_lists, 2, venue_of, 2,
                                  config=config)
        assert papers[0] == pytest.approx(papers[2])
        assert venues.sum() == pytest.approx(1.0)

    def test_venueless_papers_allowed(self):
        graph = CSRGraph.from_edges([(1, 0)], nodes=[0, 1])
        papers, authors, venues = prank(graph, [[0], [0]], 1,
                                        np.array([-1, -1]), 1)
        assert papers.sum() == pytest.approx(1.0)

    def test_alignment_validation(self, setup):
        graph, author_lists, venue_of = setup
        with pytest.raises(ConfigError):
            prank(graph, author_lists[:2], 2, venue_of, 2)
        with pytest.raises(ConfigError):
            prank(graph, author_lists, 2, venue_of[:2], 2)
        with pytest.raises(ConfigError):
            prank(graph, [[5], [0], [1]], 2, venue_of, 2)

    def test_empty_graph(self):
        graph = CSRGraph.from_edges([], nodes=[])
        papers, authors, venues = prank(graph, [], 2, np.array([]), 3)
        assert len(papers) == 0
        assert len(authors) == 2
        assert len(venues) == 3

    def test_converges_on_generated(self, small_dataset):
        graph = small_dataset.citation_csr()
        ids = [int(i) for i in graph.node_ids]
        author_index = {a: i
                        for i, a in enumerate(sorted(small_dataset.authors))}
        venue_index = {v: i
                       for i, v in enumerate(sorted(small_dataset.venues))}
        author_lists = [[author_index[a]
                         for a in small_dataset.articles[i].author_ids]
                        for i in ids]
        venue_of = np.array([venue_index[small_dataset.articles[i].venue_id]
                             for i in ids])
        papers, _, _ = prank(graph, author_lists, len(author_index),
                             venue_of, len(venue_index))
        assert papers.sum() == pytest.approx(1.0)
        assert (papers > 0).all()


class TestWeightGuard:
    def test_negative_edge_weights_rejected(self, setup):
        _, author_lists, venue_of = setup
        graph = CSRGraph.from_edges([(2, 0), (2, 1)], nodes=[0, 1, 2],
                                    weights=[1.0, -1.0])
        with pytest.raises(ConfigError,
                           match="finite and non-negative"):
            prank(graph, author_lists, 2, venue_of, 2)

    def test_non_finite_edge_weights_rejected(self, setup):
        _, author_lists, venue_of = setup
        graph = CSRGraph.from_edges([(2, 0), (2, 1)], nodes=[0, 1, 2],
                                    weights=[np.inf, 1.0])
        with pytest.raises(ConfigError,
                           match="finite and non-negative"):
            prank(graph, author_lists, 2, venue_of, 2)
