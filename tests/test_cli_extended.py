"""Tests for the extended CLI commands (top / venues / authors / sample)."""

import pytest

from repro.cli import main
from repro.data.io import load_dataset_jsonl


@pytest.fixture(scope="module")
def dataset_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "ds.jsonl"
    assert main(["generate", str(path), "--articles", "600",
                 "--venues", "8", "--authors", "150", "--seed", "4"]) == 0
    return path


class TestTop:
    def test_global(self, dataset_path, capsys):
        assert main(["top", str(dataset_path), "--top", "4"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 4
        assert lines[0].lstrip().startswith("1")

    def test_year_filter(self, dataset_path, capsys):
        assert main(["top", str(dataset_path), "--top", "5",
                     "--years", "2000-2005"]) == 0
        out = capsys.readouterr().out
        for line in out.strip().splitlines():
            year = int(line.split("[")[1][:4])
            assert 2000 <= year <= 2005

    def test_venue_filter(self, dataset_path, capsys):
        assert main(["top", str(dataset_path), "--top", "3",
                     "--venue", "0"]) == 0

    def test_bad_years(self, dataset_path, capsys):
        assert main(["top", str(dataset_path), "--years", "oops"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_no_match(self, dataset_path, capsys):
        assert main(["top", str(dataset_path), "--venue", "999"]) == 0
        assert "no articles match" in capsys.readouterr().out


class TestEntityCommands:
    def test_venues(self, dataset_path, capsys):
        assert main(["venues", str(dataset_path), "--top", "3"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3
        assert "Venue-" in lines[0]

    def test_authors(self, dataset_path, capsys):
        assert main(["authors", str(dataset_path), "--top", "3"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3
        assert "Author-" in lines[0]


class TestSample:
    @pytest.mark.parametrize("method", ["random", "snowball",
                                        "forest-fire"])
    def test_methods(self, dataset_path, tmp_path, method, capsys):
        out_path = tmp_path / f"{method}.jsonl"
        assert main(["sample", str(dataset_path), str(out_path),
                     "--method", method, "--size", "100"]) == 0
        sample = load_dataset_jsonl(out_path)
        assert sample.num_articles == 100
        assert sample.validate(strict=True) == []

    def test_oversize_fails(self, dataset_path, tmp_path, capsys):
        assert main(["sample", str(dataset_path),
                     str(tmp_path / "x.jsonl"), "--size", "10000"]) == 1
        assert "error:" in capsys.readouterr().err
