"""CLI tests for the operator observability surface.

``repro watch`` (live ticks and bundle triage), ``repro trace
--bundle`` / ``repro profile --bundle`` offline rendering, and the
``--bundle-dir`` plumbing on the chaos harnesses.
"""

import pytest

from repro.cli import main
from repro.obs import FlightRecorder, Observability

pytestmark = [pytest.mark.obs, pytest.mark.slo]


@pytest.fixture(scope="module")
def dataset_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli-obs") / "ds.jsonl"
    assert main(["generate", str(path), "--articles", "150",
                 "--venues", "6", "--authors", "40", "--seed", "9"]) == 0
    return path


@pytest.fixture(scope="module")
def bundle_path(tmp_path_factory):
    """A small but fully populated incident bundle on disk."""
    recorder = FlightRecorder()
    obs = Observability("cli-test", recorder=recorder)
    with obs.span("ingest.run"):
        with obs.span("ingest.batch", articles=3):
            obs.event("ingest.quarantine", offset=7, error="bad id")
    obs.metrics.counter("repro_serve_requests_total").inc(10)
    recorder.record_health({"status": "degraded",
                            "degraded_shards": [1]})
    bundle = recorder.capture(
        "slo:gateway-degradation",
        slo_statuses=[{"name": "gateway-degradation",
                       "kind": "gauge_max", "objective": 0.99,
                       "breaching": True, "events": 0, "value": 1.0,
                       "burn_rates": {"60.0": "inf"}, "detail": ""}])
    return bundle.save(tmp_path_factory.mktemp("bundles")
                       / "incident.json")


class TestWatch:
    def test_once_live_tick(self, dataset_path, capsys):
        assert main(["watch", str(dataset_path), "--once",
                     "--batch-size", "8", "--queries", "4"]) == 0
        out = capsys.readouterr().out
        assert "watch tick 1/1" in out
        assert "gateway-degradation" in out  # the SLO table rendered
        assert "freshness:" in out

    def test_bundle_triage_mode(self, bundle_path, capsys):
        assert main(["watch", "--bundle", str(bundle_path)]) == 0
        out = capsys.readouterr().out
        assert "incident: slo:gateway-degradation" in out
        assert "BREACH" in out

    def test_requires_dataset_or_bundle(self, capsys):
        assert main(["watch"]) == 1
        assert "error:" in capsys.readouterr().err


class TestOfflineBundleRendering:
    def test_trace_bundle(self, bundle_path, capsys):
        assert main(["trace", "--bundle", str(bundle_path)]) == 0
        out = capsys.readouterr().out
        assert "incident: slo:gateway-degradation" in out
        assert "ingest.run" in out and "ingest.batch" in out
        assert "· ingest.quarantine" in out

    def test_profile_bundle(self, bundle_path, capsys):
        assert main(["profile", "--bundle", str(bundle_path)]) == 0
        out = capsys.readouterr().out
        assert "repro_serve_requests_total" in out
        assert "BREACH" in out

    def test_missing_bundle_is_clean_error(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.json")
        for command in ("trace", "profile", "watch"):
            assert main([command, "--bundle", missing]) == 1
            assert "error:" in capsys.readouterr().err


class TestBundleDirPlumbing:
    def test_ingest_sim_writes_crash_bundle(self, tmp_path, capsys):
        bundles = tmp_path / "incidents"
        assert main(["ingest-sim", "--records", "40", "--seed", "2",
                     "--crash-batch", "1",
                     "--bundle-dir", str(bundles)]) == 0
        saved = sorted(bundles.glob("incident-*.json"))
        assert saved
        assert main(["trace", "--bundle", str(saved[0])]) == 0
        out = capsys.readouterr().out
        assert "incident: ingest.crash" in out

    def test_serve_load_writes_breach_bundle(self, dataset_path,
                                             tmp_path, capsys):
        bundles = tmp_path / "incidents"
        assert main(["serve-load", str(dataset_path), "--shards", "2",
                     "--batches", "2", "--readers", "2",
                     "--queries", "5", "--crash-shard", "1",
                     "--bundle-dir", str(bundles)]) == 0
        out = capsys.readouterr().out
        assert "incidents    1 bundle(s)" in out
        assert sorted(bundles.glob("incident-*.json"))
