"""Temporal analysis tests."""

import numpy as np
import pytest

from repro.errors import ConfigError, DatasetError
from repro.analysis.temporal import (
    citation_history,
    rising_stars,
    score_trajectories,
    sleeping_beauty_coefficient,
)


class TestCitationHistory:
    def test_tiny_dataset(self, tiny_dataset):
        history = citation_history(tiny_dataset, 0)
        # Article 0 (2000) cited by 1 (2003) and 2 (2005).
        assert history[2003] == 1
        assert history[2005] == 1
        assert history[2004] == 0
        assert min(history) == 2000
        assert max(history) == 2010

    def test_uncited_article(self, tiny_dataset):
        history = citation_history(tiny_dataset, 4)
        assert all(count == 0 for count in history.values())

    def test_unknown_article(self, tiny_dataset):
        with pytest.raises(DatasetError):
            citation_history(tiny_dataset, 99)


class TestSleepingBeauty:
    def test_immediate_peak_is_zero(self):
        assert sleeping_beauty_coefficient(
            {2000: 10, 2001: 5, 2002: 1}) == 0.0

    def test_late_awakening_is_large(self):
        dormant = {year: 0 for year in range(2000, 2019)}
        dormant[2019] = 40
        coefficient = sleeping_beauty_coefficient(dormant)
        # Each dormant year contributes ~line_t; a long sleep scores big.
        assert coefficient > 100

    def test_linear_growth_is_zero(self):
        linear = {2000 + t: 2 * t for t in range(10)}
        assert sleeping_beauty_coefficient(linear) == pytest.approx(0.0)

    def test_deeper_sag_scores_higher(self):
        shallow = {2000: 0, 2001: 3, 2002: 6, 2003: 10}
        deep = {2000: 0, 2001: 0, 2002: 0, 2003: 10}
        assert sleeping_beauty_coefficient(deep) > \
            sleeping_beauty_coefficient(shallow)

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            sleeping_beauty_coefficient({})


class TestTrajectories:
    def test_alignment_with_nan_for_absent(self):
        snapshots = [{1: 0.5}, {1: 0.6, 2: 0.1}, {1: 0.7, 2: 0.3}]
        trajectories = score_trajectories(snapshots)
        assert trajectories[1] == [0.5, 0.6, 0.7]
        assert np.isnan(trajectories[2][0])
        assert trajectories[2][1:] == [0.1, 0.3]

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            score_trajectories([])


class TestRisingStars:
    def test_fastest_growth_first(self):
        snapshots = [{1: 0.1, 2: 0.1}, {1: 0.2, 2: 0.4}]
        stars = rising_stars(snapshots, k=2)
        assert stars[0][0] == 2
        assert stars[0][1] == pytest.approx(3.0)
        assert stars[1] == (1, pytest.approx(1.0))

    def test_min_presence_filters_newcomers(self):
        snapshots = [{1: 0.1}, {1: 0.2}, {1: 0.3, 2: 9.0}]
        stars = rising_stars(snapshots, k=5, min_presence=2)
        assert all(article_id != 2 for article_id, _ in stars)

    def test_validation(self):
        with pytest.raises(ConfigError):
            rising_stars([{1: 1.0}], k=0)
        with pytest.raises(ConfigError):
            rising_stars([{1: 1.0}], min_presence=1)

    def test_on_real_snapshots(self, small_dataset):
        from repro.core.model import ArticleRanker

        _, max_year = small_dataset.year_range()
        ranker = ArticleRanker()
        snapshots = []
        for year in (max_year - 2, max_year - 1, max_year):
            snap = small_dataset.snapshot_until(year)
            snapshots.append(ranker.rank(snap).by_id())
        stars = rising_stars(snapshots, k=5)
        assert len(stars) == 5
        growths = [growth for _, growth in stars]
        assert growths == sorted(growths, reverse=True)
