"""Every benchmark module must import cleanly (catches bit-rot early).

The benchmark suite runs separately (`pytest benchmarks/
--benchmark-only`); this smoke test keeps it from silently breaking when
library APIs move — an import failure here fails the *unit* suite.
"""

import importlib.util
from pathlib import Path

import pytest

BENCHMARKS = sorted(
    (Path(__file__).resolve().parent.parent / "benchmarks").glob(
        "bench_*.py"))


@pytest.mark.parametrize("path", BENCHMARKS,
                         ids=[p.stem for p in BENCHMARKS])
def test_benchmark_module_imports(path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    # Each benchmark must define at least one pytest-discoverable test.
    assert any(name.startswith("test_") for name in dir(module))


def test_all_experiments_have_benchmarks():
    """DESIGN.md's experiment index and the benchmark files must agree."""
    design = (Path(__file__).resolve().parent.parent
              / "DESIGN.md").read_text(encoding="utf-8")
    stems = {p.stem for p in BENCHMARKS}
    for experiment in range(1, 13):
        matching = [stem for stem in stems
                    if stem.startswith(f"bench_e{experiment}_")]
        assert matching, f"no benchmark file for experiment E{experiment}"
        assert matching[0] in design, \
            f"{matching[0]} not referenced in DESIGN.md"
