"""The deferred-annotation lint must stay green over the whole tree."""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO / "tools"))

import check_annotations  # noqa: E402


class TestChecker:
    def test_flags_missing_typing_import(self, tmp_path):
        # The shape of the original bug: Dict used, never imported.
        bad = tmp_path / "bad.py"
        bad.write_text(
            "def payload(x) -> 'Dict[int, str]':\n    return {}\n")
        problems = check_annotations.check_file(bad)
        assert problems == [(1, "Dict")]

    def test_type_checking_imports_count_as_bound(self, tmp_path):
        good = tmp_path / "good.py"
        good.write_text(
            "from typing import TYPE_CHECKING, Optional\n"
            "if TYPE_CHECKING:\n"
            "    from somewhere import Thing\n"
            "def f(t: Optional['Thing']) -> None:\n    pass\n")
        assert check_annotations.check_file(good) == []

    def test_dotted_references_need_only_the_root(self, tmp_path):
        good = tmp_path / "dotted.py"
        good.write_text(
            "import numpy as np\n"
            "def f(x: 'np.ndarray') -> 'np.ndarray':\n    return x\n")
        assert check_annotations.check_file(good) == []

    def test_unparsable_string_annotations_skipped(self, tmp_path):
        odd = tmp_path / "odd.py"
        odd.write_text("def f(x: 'not valid python (') -> None:\n"
                       "    pass\n")
        assert check_annotations.check_file(odd) == []


class TestRepoIsClean:
    def test_src_tests_benchmarks_tools(self):
        result = subprocess.run(
            [sys.executable, str(REPO / "tools" / "check_annotations.py"),
             "src", "tests", "benchmarks", "tools"],
            cwd=REPO, capture_output=True, text=True)
        assert result.returncode == 0, result.stdout + result.stderr
