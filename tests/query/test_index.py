"""RankIndex serving-layer tests."""

import pytest

from repro.errors import ConfigError, NodeNotFoundError
from repro.query import RankIndex


@pytest.fixture()
def index(tiny_dataset):
    scores = {0: 0.9, 1: 0.7, 2: 0.2, 3: 0.5, 4: 0.4}
    return RankIndex(tiny_dataset, scores)


class TestConstruction:
    def test_requires_exact_coverage(self, tiny_dataset):
        with pytest.raises(ConfigError):
            RankIndex(tiny_dataset, {0: 1.0})
        with pytest.raises(ConfigError):
            RankIndex(tiny_dataset,
                      {i: 1.0 for i in range(6)})  # extra id 5

    def test_len(self, index):
        assert len(index) == 5


class TestLookups:
    def test_rank_of(self, index):
        assert index.rank_of(0) == 1
        assert index.rank_of(1) == 2
        assert index.rank_of(2) == 5

    def test_score_of(self, index):
        assert index.score_of(3) == 0.5

    def test_percentile(self, index):
        assert index.percentile(0) == 1.0
        assert index.percentile(2) == pytest.approx(0.2)

    def test_unknown_article(self, index):
        with pytest.raises(NodeNotFoundError):
            index.rank_of(99)

    def test_tie_break_by_id(self, tiny_dataset):
        index = RankIndex(tiny_dataset, {i: 1.0 for i in range(5)})
        assert [e.article_id for e in index.top(5)] == [0, 1, 2, 3, 4]

    def test_tie_order_independent_of_mapping_order(self, tiny_dataset):
        # Stable tie ordering must come from the ids, not from whatever
        # order the score mapping happens to iterate in.
        shuffled = {3: 1.0, 0: 1.0, 4: 1.0, 1: 1.0, 2: 1.0}
        index = RankIndex(tiny_dataset, shuffled)
        assert [e.article_id for e in index.top(5)] == [0, 1, 2, 3, 4]
        assert [index.rank_of(i) for i in range(5)] == [1, 2, 3, 4, 5]

    def test_partial_ties_keep_id_order_within_group(self, tiny_dataset):
        index = RankIndex(tiny_dataset,
                          {0: 0.5, 1: 0.9, 2: 0.5, 3: 0.9, 4: 0.1})
        assert [e.article_id for e in index.top(5)] == [1, 3, 0, 2, 4]

    def test_years_track_articles_after_reorder(self, tiny_dataset):
        # Years are gathered per article and must follow the score
        # reordering exactly (year filters read the aligned array).
        index = RankIndex(tiny_dataset,
                          {0: 0.1, 1: 0.2, 2: 0.3, 3: 0.4, 4: 0.5})
        for entry in index.top(5):
            assert entry.year == \
                tiny_dataset.articles[entry.article_id].year


class TestTop:
    def test_global_top(self, index):
        entries = index.top(3)
        assert [e.article_id for e in entries] == [0, 1, 3]
        assert [e.rank for e in entries] == [1, 2, 3]
        assert entries[0].title == "Foundations"

    def test_venue_filter(self, index):
        # Venue 1 hosts articles 2 and 4.
        entries = index.top(10, venue_id=1)
        assert [e.article_id for e in entries] == [4, 2]
        assert [e.rank for e in entries] == [1, 2]

    def test_author_filter(self, index):
        # Author 1 (Bob) wrote articles 1, 2, 4.
        entries = index.top(10, author_id=1)
        assert [e.article_id for e in entries] == [1, 4, 2]

    def test_year_filter(self, index):
        entries = index.top(10, year_range=(2004, 2009))
        assert [e.article_id for e in entries] == [3, 2]

    def test_combined_filters(self, index):
        entries = index.top(10, author_id=1, venue_id=1,
                            year_range=(2000, 2009))
        assert [e.article_id for e in entries] == [2]

    def test_no_match(self, index):
        assert index.top(5, venue_id=42) == []

    def test_validation(self, index):
        with pytest.raises(ConfigError):
            index.top(0)
        with pytest.raises(ConfigError):
            index.top(3, year_range=(2010, 2000))


class TestPaging:
    def test_pages_cover_ranking(self, index):
        first = index.page(0, 2)
        second = index.page(2, 2)
        third = index.page(4, 2)
        ids = [e.article_id for e in first + second + third]
        assert ids == [0, 1, 3, 4, 2]
        assert [e.rank for e in first] == [1, 2]
        assert [e.rank for e in second] == [3, 4]

    def test_offset_past_end(self, index):
        assert index.page(10, 5) == []

    def test_validation(self, index):
        with pytest.raises(ConfigError):
            index.page(-1, 5)
        with pytest.raises(ConfigError):
            index.page(0, 0)


class TestWithModel:
    def test_end_to_end(self, small_dataset):
        from repro.core.model import ArticleRanker

        result = ArticleRanker().rank(small_dataset)
        index = RankIndex(small_dataset, result.by_id())
        top = index.top(10)
        assert [e.article_id for e in top] == \
            [article_id for article_id, _ in result.top(10)]
        _, max_year = small_dataset.year_range()
        recent = index.top(5, year_range=(max_year - 2, max_year))
        assert all(max_year - 2 <= e.year <= max_year for e in recent)


class TestPostingLists:
    def test_posting_lists_are_sorted_int64_arrays(self, index):
        import numpy as np

        for table in (index._by_venue, index._by_author):
            for positions in table.values():
                assert isinstance(positions, np.ndarray)
                assert positions.dtype == np.int64
                assert np.all(np.diff(positions) > 0)

    def test_filtered_top_matches_brute_force(self, small_dataset):
        from repro.core.model import ArticleRanker

        result = ArticleRanker().rank(small_dataset)
        index = RankIndex(small_dataset, result.by_id())
        ranked_ids = [e.article_id for e in index.top(len(index))]
        venue_id = next(iter(small_dataset.venues))
        author_id = next(iter(small_dataset.authors))

        def brute(predicate, k):
            return [i for i in ranked_ids
                    if predicate(small_dataset.articles[i])][:k]

        got = [e.article_id for e in index.top(7, venue_id=venue_id)]
        assert got == brute(lambda a: a.venue_id == venue_id, 7)

        got = [e.article_id for e in index.top(7, author_id=author_id)]
        assert got == brute(lambda a: author_id in a.author_ids, 7)

        got = [e.article_id
               for e in index.top(7, venue_id=venue_id,
                                  author_id=author_id)]
        assert got == brute(lambda a: a.venue_id == venue_id
                            and author_id in a.author_ids, 7)
