"""PerfArtifact tests: the machine-readable BENCH_*.json artifact."""

import json

from repro.bench.runner import PerfArtifact
from repro.obs.report import RunReport


class TestPerfArtifact:
    def test_filename(self):
        assert PerfArtifact("e4").filename() == "BENCH_E4.json"

    def test_records_keep_label_and_metrics(self):
        artifact = PerfArtifact("E9")
        entry = artifact.record("scaling", num_nodes=10, seconds=0.5)
        assert entry == {"label": "scaling", "num_nodes": 10,
                         "seconds": 0.5}
        assert artifact.records == [entry]

    def test_save_writes_valid_report(self, tmp_path):
        artifact = PerfArtifact("E9")
        artifact.record("scaling", num_nodes=10, seconds=0.5)
        artifact.record("scaling", num_nodes=20, seconds=1.25)
        path = artifact.save(tmp_path)
        assert path.name == "BENCH_E9.json"
        report = json.loads(path.read_text())
        assert report["name"] == "E9"
        assert {"host", "python", "time"} <= set(report["meta"])
        records = report["metrics"]["records"]
        assert [r["num_nodes"] for r in records] == [10, 20]
        assert RunReport.load(path) == report
