"""benchmarks/compare.py tests: report diffing and the regression gate."""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "bench_compare",
    Path(__file__).resolve().parents[2] / "benchmarks" / "compare.py")
compare = importlib.util.module_from_spec(_SPEC)
# Registered before exec: dataclass decorators look the module up.
sys.modules[_SPEC.name] = compare
_SPEC.loader.exec_module(compare)

pytestmark = pytest.mark.obs


def _report(timings=None, metrics=None, name="run"):
    payload = {"format_version": 2, "name": name, "meta": {}}
    if timings:
        payload["timings"] = timings
    if metrics:
        payload["metrics"] = metrics
    return payload


class TestCompareReports:
    def test_regression_beyond_threshold_flagged(self):
        comparison = compare.compare_reports(
            _report(timings={"solve": 1.0, "io": 0.5}),
            _report(timings={"solve": 1.3, "io": 0.55}))
        assert not comparison.ok
        [regression] = comparison.regressions
        assert regression.key == "timings/solve"
        assert regression.change == pytest.approx(0.3)
        [steady] = comparison.unchanged
        assert steady.key == "timings/io"

    def test_improvement_is_not_fatal(self):
        comparison = compare.compare_reports(
            _report(timings={"solve": 1.0}),
            _report(timings={"solve": 0.5}))
        assert comparison.ok
        assert [d.key for d in comparison.improvements] == \
            ["timings/solve"]

    def test_sub_millisecond_stages_skipped(self):
        comparison = compare.compare_reports(
            _report(timings={"tiny": 1e-5}),
            _report(timings={"tiny": 9e-5}))  # 9x but pure noise
        assert comparison.ok
        assert comparison.unchanged == []

    def test_stages_only_one_side_measured_ignored(self):
        comparison = compare.compare_reports(
            _report(timings={"old_stage": 1.0}),
            _report(timings={"new_stage": 1.0}))
        assert comparison.ok
        assert comparison.unchanged == []

    def test_perf_artifact_records_matched_by_label_position(self):
        baseline = _report(metrics={"records": [
            {"label": "scaling", "num_nodes": 10, "seconds": 1.0},
            {"label": "scaling", "num_nodes": 20, "seconds": 2.0}]})
        candidate = _report(metrics={"records": [
            {"label": "scaling", "num_nodes": 10, "seconds": 1.0},
            {"label": "scaling", "num_nodes": 20, "seconds": 3.0}]})
        comparison = compare.compare_reports(baseline, candidate)
        [regression] = comparison.regressions
        assert regression.key == "records/scaling[1].seconds"
        assert regression.change == pytest.approx(0.5)

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            compare.compare_reports(_report(), _report(), threshold=0)


class TestCommandLine:
    def test_exit_codes_and_rendering(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        cand = tmp_path / "cand.json"
        base.write_text(json.dumps(_report(timings={"solve": 1.0},
                                           name="base")))
        cand.write_text(json.dumps(_report(timings={"solve": 2.0},
                                           name="cand")))
        assert compare.main([str(base), str(cand)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "timings/solve" in out
        assert "base -> cand" in out
        # Same file against itself: clean exit.
        assert compare.main([str(base), str(base)]) == 0

    def test_custom_threshold(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        cand = tmp_path / "cand.json"
        base.write_text(json.dumps(_report(timings={"solve": 1.0})))
        cand.write_text(json.dumps(_report(timings={"solve": 1.3})))
        assert compare.main([str(base), str(cand),
                             "--threshold", "0.5"]) == 0


class TestHardPrefix:
    def test_non_matching_regressions_are_soft(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        cand = tmp_path / "cand.json"
        base.write_text(json.dumps(_report(
            timings={"solve": 1.0}, metrics={"bytes_shipped": 1000})))
        cand.write_text(json.dumps(_report(
            timings={"solve": 5.0}, metrics={"bytes_shipped": 1000})))
        # Timing regressed 5x but only bytes are gated: soft, exit 0.
        assert compare.main([str(base), str(cand),
                             "--hard-prefix", "metrics/bytes_"]) == 0
        out = capsys.readouterr().out
        assert "regr (soft)" in out
        assert "REGRESSION" not in out

    def test_matching_regressions_stay_fatal(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        cand = tmp_path / "cand.json"
        base.write_text(json.dumps(_report(
            metrics={"bytes_shipped": 1000})))
        cand.write_text(json.dumps(_report(
            metrics={"bytes_shipped": 5000})))
        assert compare.main([str(base), str(cand),
                             "--hard-prefix", "metrics/bytes_"]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_split_regressions_without_prefixes_all_hard(self):
        comparison = compare.compare_reports(
            _report(timings={"solve": 1.0}),
            _report(timings={"solve": 2.0}))
        hard, soft = compare.split_regressions(comparison, None)
        assert [d.key for d in hard] == ["timings/solve"]
        assert soft == []


class TestBenchArtifactStamping:
    def test_bench_artifacts_carry_version_and_sha(self, tmp_path):
        from repro.bench.runner import PerfArtifact
        from repro.obs import REPORT_FORMAT_VERSION

        artifact = PerfArtifact("E0")
        artifact.record("scaling", num_nodes=10, seconds=0.5)
        payload = json.loads(artifact.save(tmp_path).read_text())
        assert payload["format_version"] == REPORT_FORMAT_VERSION
        assert "git_sha" in payload["meta"]
