"""Table renderer tests."""

import pytest

from repro.errors import ConfigError
from repro.bench.tables import render_rows, render_series, render_table


class TestRenderTable:
    def test_alignment(self):
        out = render_table("T", ["name", "value"],
                           [["pagerank", 1], ["cc", 123456]])
        lines = out.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("name")
        assert "123456" in lines[4]
        # Columns aligned: 'value' header starts where values start.
        assert lines[1].index("value") == lines[3].index("1")

    def test_width_mismatch(self):
        with pytest.raises(ConfigError):
            render_table("T", ["a"], [["x", "y"]])

    def test_empty_headers(self):
        with pytest.raises(ConfigError):
            render_table("T", [], [])

    def test_no_rows(self):
        out = render_table("T", ["a"], [])
        assert out.splitlines()[-1].startswith("-")


class TestRenderRows:
    def test_dict_rows(self):
        out = render_rows("T", [{"m": "pr", "acc": 0.9},
                                {"m": "cc", "acc": 0.7}])
        assert "acc" in out
        assert "0.7" in out

    def test_missing_key_blank(self):
        out = render_rows("T", [{"a": 1, "b": 2}, {"a": 3}])
        assert "3" in out

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            render_rows("T", [])


class TestRenderSeries:
    def test_series_table(self):
        out = render_series("F", "n", [10, 20],
                            {"naive": [1.0, 2.0], "opt": [0.5, 0.6]})
        lines = out.splitlines()
        assert lines[1].split() == ["n", "naive", "opt"]
        assert len(lines) == 5

    def test_misaligned_series(self):
        with pytest.raises(ConfigError):
            render_series("F", "n", [1, 2], {"s": [1.0]})

    def test_empty_series(self):
        with pytest.raises(ConfigError):
            render_series("F", "n", [1], {})
