"""Benchmark workload builder tests (small scales to stay fast)."""


from repro.bench.runner import ExperimentLog
from repro.bench.workloads import (
    aminer_small,
    compute_baseline_scores,
    mag_small,
    sized_citation_graph,
)


class TestWorkloads:
    def test_aminer_small_cached(self):
        first = aminer_small(scale=2000)
        second = aminer_small(scale=2000)
        assert first is second
        dataset, truth = first
        assert dataset.num_articles == 2000
        assert len(truth.pairs) == 2000

    def test_mag_small(self):
        dataset, truth = mag_small(scale=2000)
        assert dataset.num_articles == 2000
        assert len(truth.awards) > 0

    def test_sized_citation_graph(self):
        graph, years = sized_citation_graph(1500)
        assert graph.num_nodes == 1500
        assert years.shape == (1500,)

    def test_compute_baseline_scores(self):
        dataset, _ = aminer_small(scale=2000)
        scores = compute_baseline_scores(dataset)
        expected = {"QISAR", "TWPR", "PageRank", "CitationCount",
                    "CitationRate", "CiteRank", "FutureRank", "HITS",
                    "PRank", "RescaledPR"}
        assert set(scores) == expected
        for method, by_id in scores.items():
            assert len(by_id) == dataset.num_articles, method


class TestExperimentLog:
    def test_accumulates_and_saves(self, tmp_path, capsys):
        log = ExperimentLog("e-test")
        log.add("BLOCK ONE")
        log.add("BLOCK TWO", echo=False)
        out = capsys.readouterr().out
        assert "BLOCK ONE" in out
        assert "BLOCK TWO" not in out
        path = log.save(tmp_path / "run.log")
        content = path.read_text()
        assert content.startswith("# e-test")
        assert "BLOCK TWO" in content
