"""IngestJournal: CRC records, rotation, cursor, torn-tail recovery."""

import json

import pytest

from repro.errors import StorageError
from repro.ingest import IngestJournal
from repro.ingest.journal import payload_crc

pytestmark = pytest.mark.ingest


def _payloads(n):
    return [{"kind": "article", "id": i, "year": 2020, "refs": []}
            for i in range(n)]


class TestAppendReplay:
    def test_round_trip(self, tmp_path):
        with IngestJournal(tmp_path / "j") as journal:
            for payload in _payloads(5):
                journal.append(payload)
            records = list(journal.replay(0))
        assert [r.offset for r in records] == [0, 1, 2, 3, 4]
        assert records[3].payload["id"] == 3

    def test_offsets_survive_reopen(self, tmp_path):
        with IngestJournal(tmp_path / "j") as journal:
            for payload in _payloads(3):
                journal.append(payload)
        with IngestJournal(tmp_path / "j") as journal:
            assert journal.next_offset == 3
            assert journal.append({"kind": "cite", "citing": 1,
                                   "cited": 0}) == 3

    def test_segment_rotation_is_atomic_rename(self, tmp_path):
        with IngestJournal(tmp_path / "j",
                           segment_records=2) as journal:
            for payload in _payloads(5):
                journal.append(payload)
            journal.flush()
            sealed = sorted(p.name for p
                            in (tmp_path / "j").glob("*.jsonl"))
            active = list((tmp_path / "j").glob("*.open"))
            assert sealed == ["segment-00000000.jsonl",
                              "segment-00000001.jsonl"]
            assert len(active) == 1
            assert [r.offset for r in journal.replay(0)] == list(range(5))

    def test_replay_starts_at_committed_by_default(self, tmp_path):
        with IngestJournal(tmp_path / "j") as journal:
            for payload in _payloads(6):
                journal.append(payload)
            journal.commit(4)
            assert [r.offset for r in journal.replay()] == [4, 5]


class TestCursor:
    def test_commit_persists_and_reloads(self, tmp_path):
        with IngestJournal(tmp_path / "j") as journal:
            for payload in _payloads(4):
                journal.append(payload)
            journal.commit(3, extra={"batches_applied": 2})
        with IngestJournal(tmp_path / "j") as journal:
            assert journal.committed == 3
            assert journal.cursor_extra["batches_applied"] == 2

    def test_cursor_never_moves_backwards(self, tmp_path):
        with IngestJournal(tmp_path / "j") as journal:
            journal.append(_payloads(1)[0])
            journal.commit(1)
            with pytest.raises(StorageError):
                journal.commit(0)

    def test_corrupt_cursor_is_fatal(self, tmp_path):
        with IngestJournal(tmp_path / "j") as journal:
            journal.append(_payloads(1)[0])
            journal.commit(1)
        (tmp_path / "j" / "CURSOR.json").write_text("{broken",
                                                    encoding="utf-8")
        with pytest.raises(StorageError):
            IngestJournal(tmp_path / "j")


class TestRecovery:
    def test_torn_tail_dropped_and_truncated(self, tmp_path):
        with IngestJournal(tmp_path / "j") as journal:
            for payload in _payloads(4):
                journal.append(payload)
        active = next((tmp_path / "j").glob("*.open"))
        raw = active.read_bytes()
        active.write_bytes(raw[:-7])  # torn mid-line write
        with IngestJournal(tmp_path / "j") as journal:
            assert journal.torn_records_dropped == 1
            assert journal.next_offset == 3  # offset 3 re-deliverable
            assert [r.offset for r in journal.replay(0)] == [0, 1, 2]

    def test_bitflip_in_tail_detected_by_crc(self, tmp_path):
        with IngestJournal(tmp_path / "j") as journal:
            for payload in _payloads(3):
                journal.append(payload)
        active = next((tmp_path / "j").glob("*.open"))
        lines = active.read_text(encoding="utf-8").splitlines()
        entry = json.loads(lines[-1])
        entry["r"]["id"] = 999  # payload flipped, CRC stale
        lines[-1] = json.dumps(entry, separators=(",", ":"))
        active.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with IngestJournal(tmp_path / "j") as journal:
            assert journal.torn_records_dropped == 1
            assert journal.next_offset == 2

    def test_sealed_segment_corruption_is_fatal(self, tmp_path):
        with IngestJournal(tmp_path / "j",
                           segment_records=2) as journal:
            for payload in _payloads(4):
                journal.append(payload)
        sealed = tmp_path / "j" / "segment-00000000.jsonl"
        sealed.write_text(sealed.read_text(encoding="utf-8")
                          .replace('"id":0', '"id":9'),
                          encoding="utf-8")
        with pytest.raises(StorageError):
            IngestJournal(tmp_path / "j")

    def test_crc_is_canonical(self):
        assert payload_crc({"a": 1, "b": 2}) == \
            payload_crc({"b": 2, "a": 1})


class TestSeqStamp:
    def test_seq_round_trips_outside_the_crc(self, tmp_path):
        payload = _payloads(1)[0]
        with IngestJournal(tmp_path / "j") as journal:
            journal.append(payload, seq=17)
            journal.append(payload)  # unstamped
            records = list(journal.replay(0))
        assert records[0].seq == 17
        assert records[1].seq is None
        # The stamp rides outside the CRC'd payload: both lines carry
        # the same content fingerprint.
        assert payload_crc(records[0].payload) == \
            payload_crc(records[1].payload)

    def test_last_seq_survives_reopen_and_rotation(self, tmp_path):
        with IngestJournal(tmp_path / "j",
                           segment_records=2) as journal:
            for index, payload in enumerate(_payloads(5)):
                journal.append(payload, seq=100 + index)
            assert journal.last_seq == 104
        with IngestJournal(tmp_path / "j",
                           segment_records=2) as journal:
            assert journal.last_seq == 104

    def test_last_seq_survives_compaction(self, tmp_path):
        with IngestJournal(tmp_path / "j",
                           segment_records=2) as journal:
            for index, payload in enumerate(_payloads(4)):
                journal.append(payload, seq=200 + index)
            journal.commit(4)
            journal.compact(retention="delete")
        # Hot tier is empty; the manifest carries the watermark.
        with IngestJournal(tmp_path / "j",
                           segment_records=2) as journal:
            assert journal.last_seq == 203
            assert journal.next_offset == 4


class TestTornCommittedAccounting:
    def _tear_last_line(self, directory):
        active = next(directory.glob("*.open"))
        raw = active.read_bytes()
        active.write_bytes(raw[:-8])

    def test_torn_line_below_cursor_is_bytes_not_records(self,
                                                         tmp_path):
        # The crash window between the cursor rewrite and the tail
        # truncation: the torn record is already inside a downstream
        # checkpoint, so the tear lost bytes, not a record.
        with IngestJournal(tmp_path / "j") as journal:
            for payload in _payloads(5):
                journal.append(payload)
            journal.commit(5)
        self._tear_last_line(tmp_path / "j")
        with IngestJournal(tmp_path / "j") as journal:
            assert journal.torn_records_dropped == 0
            assert journal.torn_committed_dropped == 1

    def test_two_consecutive_cycles_never_double_count(self, tmp_path):
        # Regression: before the cursor-aware split, every resume
        # cycle that re-tore a committed tail re-counted the same
        # record as dropped.
        with IngestJournal(tmp_path / "j") as journal:
            for payload in _payloads(5):
                journal.append(payload)
            journal.commit(5)
        for _cycle in range(2):
            self._tear_last_line(tmp_path / "j")
            with IngestJournal(tmp_path / "j") as journal:
                assert journal.torn_records_dropped == 0
                assert journal.torn_committed_dropped == 1
                # Re-journal the record the tear took (what replay /
                # re-delivery does), as the next cycle's tail.
                journal.append(_payloads(5)[-1])

    def test_mixed_tear_splits_the_accounting(self, tmp_path):
        # Offsets 0..2 committed; the tear hits the line at offset 2,
        # so offsets 2..4 are all dropped (everything after the first
        # torn line is distrusted). One was committed — bytes lost,
        # not a record — and two are real losses for re-delivery.
        with IngestJournal(tmp_path / "j") as journal:
            for payload in _payloads(5):
                journal.append(payload)
            journal.commit(3)
        active = next((tmp_path / "j").glob("*.open"))
        lines = active.read_text(encoding="utf-8").splitlines(True)
        lines[2] = lines[2].replace('"year":2020', '"year":2021', 1)
        active.write_text("".join(lines), encoding="utf-8")
        with IngestJournal(tmp_path / "j") as journal:
            assert journal.torn_committed_dropped == 1
            assert journal.torn_records_dropped == 2
            assert journal.next_offset == 2
