"""Partitioned ingestion: routing, fan-in order, crash isolation."""

import pytest

from repro.core.model import ArticleRanker, RankerConfig
from repro.data.generator import GeneratorConfig, generate_dataset
from repro.engine.live import LiveRanker
from repro.errors import IngestError
from repro.ingest import (
    Coalescer,
    IngestJournal,
    IngestPipeline,
    PartitionedIngestPipeline,
    SyntheticSource,
    partition_of,
    partition_route,
    route_key,
)
from repro.ingest.partition import Envelope, FanIn
from repro.ingest.sim import datasets_equal
from repro.resilience.faults import FaultPlan
from repro.serve.shard import shard_of

pytestmark = pytest.mark.ingest


@pytest.fixture(scope="module")
def base_dataset():
    return generate_dataset(GeneratorConfig(
        num_articles=80, num_venues=4, num_authors=25,
        start_year=2000, end_year=2013, seed=9))


def chaos_source(dataset, records=90, seed=2):
    return SyntheticSource(sorted(dataset.articles), records,
                           seed=seed, duplicate_every=7,
                           mangle_every=11, cite_every=5)


def run_partitioned(dataset, source, root, num_partitions,
                    **kwargs):
    live = LiveRanker(dataset, checkpoint_dir=root / "ckpt")
    pipeline = PartitionedIngestPipeline(
        live, source, root / "journal", num_partitions,
        coalescer=Coalescer(max_queue=48, min_batch=8, max_batch=32),
        **kwargs)
    return pipeline, pipeline.run()


def run_single(dataset, source, root):
    live = LiveRanker(dataset, checkpoint_dir=root / "ckpt")
    pipeline = IngestPipeline(
        live, source, IngestJournal(root / "journal"),
        coalescer=Coalescer(max_queue=48, min_batch=8, max_batch=32))
    return pipeline, pipeline.run()


class TestRouting:
    def test_partition_of_matches_serving_shards(self):
        # Ingest partitions and serving shards must slice the corpus
        # identically, so operators chase one partition + one shard.
        for record_id in range(200):
            for k in (1, 2, 3, 5, 8):
                assert partition_of(record_id, k) == \
                    shard_of(record_id, k)

    def test_route_key_follows_the_mutated_entity(self):
        assert route_key({"kind": "article", "id": 42,
                          "year": 2020}) == 42
        assert route_key({"kind": "cite", "citing": 7,
                          "cited": 3}) == 7

    def test_unroutable_payload_routes_deterministically(self):
        mangled = {"kind": "article", "title": "no-id", "year": 2020}
        key = route_key(mangled)
        assert isinstance(key, int)
        assert route_key(dict(mangled)) == key
        for k in (2, 4):
            assert 0 <= partition_route(mangled, k) < k

    def test_bool_id_is_not_a_route_key(self):
        # bool is an int subclass; a feed saying {"id": true} must not
        # route as partition 1.
        by_crc = route_key({"kind": "article", "id": True,
                            "year": 2020})
        assert by_crc != 1


class TestFanIn:
    def envelope(self, seq, partition=0, offset=0):
        return Envelope(seq=seq, partition=partition, offset=offset,
                        item=None)

    def test_releases_in_canonical_order(self):
        fan_in = FanIn(3)
        # Delivered out of order across partitions.
        fan_in.deliver(self.envelope(2, partition=1, offset=0))
        fan_in.deliver(self.envelope(0, partition=2, offset=0))
        fan_in.deliver(self.envelope(1, partition=0, offset=5))
        fan_in.advance(2)
        order = [(e.seq, e.partition) for e in fan_in.drain()]
        assert order == [(0, 2), (1, 0), (2, 1)]

    def test_holds_envelopes_past_the_watermark(self):
        fan_in = FanIn(2)
        fan_in.deliver(self.envelope(5, partition=0))
        fan_in.deliver(self.envelope(3, partition=1))
        fan_in.advance(3)
        assert [e.seq for e in fan_in.drain()] == [3]
        assert len(fan_in) == 1  # seq 5 still buffered
        fan_in.advance(5)
        assert [e.seq for e in fan_in.drain()] == [5]

    def test_ties_break_by_partition_then_offset(self):
        fan_in = FanIn(3)
        fan_in.deliver(self.envelope(4, partition=2, offset=0))
        fan_in.deliver(self.envelope(4, partition=0, offset=9))
        fan_in.deliver(self.envelope(4, partition=0, offset=1))
        fan_in.advance(4)
        order = [(e.partition, e.offset) for e in fan_in.drain()]
        assert order == [(0, 1), (0, 9), (2, 0)]

    def test_rejects_foreign_partition(self):
        with pytest.raises(IngestError):
            FanIn(2).deliver(self.envelope(0, partition=5))


class TestBitIdentical:
    @pytest.mark.parametrize("num_partitions", [2, 3, 5])
    def test_matches_single_worker_pipeline(self, base_dataset,
                                            tmp_path,
                                            num_partitions):
        source = chaos_source(base_dataset)
        single_pipeline, single_report = run_single(
            base_dataset, source, tmp_path / "single")
        partitioned, report = run_partitioned(
            base_dataset, source, tmp_path / "multi", num_partitions)
        # Same corpus, same exact ranking, same batch cadence.
        assert datasets_equal(partitioned.live.dataset,
                              single_pipeline.live.dataset)
        config = RankerConfig()
        assert ArticleRanker(config).rank(
            partitioned.live.dataset).by_id() == ArticleRanker(
            config).rank(single_pipeline.live.dataset).by_id()
        assert report.batches_applied == single_report.batches_applied

    def test_every_record_journaled_in_its_home_partition(
            self, base_dataset, tmp_path):
        source = chaos_source(base_dataset, records=40)
        partitioned, report = run_partitioned(
            base_dataset, source, tmp_path, 3)
        assert sum(s.records_journaled
                   for s in report.partitions) == 40
        for worker in partitioned.workers:
            for record in worker.journal.replay(0):
                assert partition_route(record.payload, 3) == \
                    worker.partition


class TestCrashIsolation:
    def test_other_partitions_untouched_by_a_crash(self, base_dataset,
                                                   tmp_path):
        plan = FaultPlan(seed=0)
        plan.crash_partition_worker(0, 20)
        plan.tear_partition_tail(0)
        source = chaos_source(base_dataset)
        partitioned, report = run_partitioned(
            base_dataset, source, tmp_path, 3, fault_plan=plan)
        # Only partition 0 died and recovered.
        assert [w.incarnation for w in partitioned.workers] == \
            [1, 0, 0]
        assert [s.worker_crashes for s in report.partitions] == \
            [1, 0, 0]
        # The bystanders never tore or replayed.
        assert report.partitions[1].torn_records_dropped == 0
        assert report.partitions[2].torn_records_dropped == 0
        # And the run still lost nothing: at the end every journal
        # offset is durably committed (the torn record was re-
        # delivered, so its partition journaled one extra append but
        # the offset space is contiguous and fully covered).
        assert report.records_pulled == len(source)
        for worker in partitioned.workers:
            assert worker.journal.committed == \
                worker.journal.next_offset

    def test_simultaneous_crashes_with_tears_recover(self,
                                                     base_dataset,
                                                     tmp_path):
        plan = FaultPlan(seed=0)
        plan.crash_partition_worker(0, 30)
        plan.crash_partition_worker(1, 30)
        plan.tear_partition_tail(0)
        plan.tear_partition_tail(1)
        source = chaos_source(base_dataset)
        partitioned, report = run_partitioned(
            base_dataset, source, tmp_path / "multi", 4,
            fault_plan=plan)
        assert report.worker_crashes == 2
        single_pipeline, _ = run_single(base_dataset, source,
                                        tmp_path / "single")
        assert datasets_equal(partitioned.live.dataset,
                              single_pipeline.live.dataset)

    def test_stalled_partition_does_not_block_others(self,
                                                     base_dataset,
                                                     tmp_path):
        plan = FaultPlan(seed=0)
        plan.stall_partition_worker(1, 10, 0.001)
        source = chaos_source(base_dataset, records=40)
        partitioned, report = run_partitioned(
            base_dataset, source, tmp_path, 3, fault_plan=plan)
        assert report.records_pulled == 40
        assert report.worker_crashes == 0


class TestResumeAndCursors:
    def test_per_partition_cursors_cover_their_journals(
            self, base_dataset, tmp_path):
        source = chaos_source(base_dataset, records=60)
        partitioned, report = run_partitioned(
            base_dataset, source, tmp_path, 3)
        for worker in partitioned.workers:
            # Tombstones (mangled records) advance the cursor too:
            # at the end every journaled offset is committed.
            assert worker.journal.committed == \
                worker.stats.records_journaled

    def test_resume_from_committed_journals_is_idempotent(
            self, base_dataset, tmp_path):
        source = chaos_source(base_dataset, records=60)
        first, report = run_partitioned(base_dataset, source,
                                        tmp_path, 3)
        for worker in first.workers:
            worker.journal.close()
        resumed = PartitionedIngestPipeline.resume(
            tmp_path / "ckpt", tmp_path / "journal", source, 3,
            coalescer=Coalescer(max_queue=48, min_batch=8,
                                max_batch=32))
        resumed_report = resumed.run()
        # Fully committed journals: nothing replays, the re-pulled
        # feed is absorbed as duplicates, the corpus is unchanged.
        assert resumed_report.records_replayed == 0
        assert datasets_equal(first.live.dataset,
                              resumed.live.dataset)

    def test_resume_keyword_knobs_round_trip(self, base_dataset,
                                             tmp_path):
        source = chaos_source(base_dataset, records=30)
        first, _ = run_partitioned(base_dataset, source, tmp_path, 2,
                                   segment_records=8,
                                   compaction="archive")
        for worker in first.workers:
            worker.journal.close()
        resumed = PartitionedIngestPipeline.resume(
            tmp_path / "ckpt", tmp_path / "journal", source, 2,
            segment_records=8, compaction="archive",
            coalescer=Coalescer(max_queue=48, min_batch=8,
                                max_batch=32))
        resumed.run()
        assert datasets_equal(first.live.dataset,
                              resumed.live.dataset)


class TestValidation:
    def test_rejects_bad_partition_count(self, base_dataset,
                                         tmp_path):
        live = LiveRanker(base_dataset)
        with pytest.raises(IngestError):
            PartitionedIngestPipeline(live, None, tmp_path, 0)

    def test_rejects_bad_compaction_mode(self, base_dataset,
                                         tmp_path):
        live = LiveRanker(base_dataset)
        with pytest.raises(IngestError):
            PartitionedIngestPipeline(live, None, tmp_path, 2,
                                      compaction="shred")
