"""Streaming-ingestion suite (journal, dedup, backpressure, chaos)."""
