"""Journal segment archival: compaction, manifests, archive replay."""

import json
import shutil

import pytest

from repro.errors import StorageError
from repro.ingest import IngestJournal, IngestPipeline, SyntheticSource
from repro.ingest.coalescer import Coalescer
from repro.ingest.journal import ARCHIVE_DIR, ARCHIVE_FILE
from repro.data.generator import GeneratorConfig, generate_dataset
from repro.engine.live import LiveRanker

pytestmark = pytest.mark.ingest


def _payloads(n, start=0):
    return [{"kind": "article", "id": i, "year": 2020, "refs": []}
            for i in range(start, start + n)]


def fill(journal, n, start=0):
    for payload in _payloads(n, start):
        journal.append(payload)


class TestCompaction:
    def test_archives_sealed_covered_segments(self, tmp_path):
        with IngestJournal(tmp_path / "j", segment_records=4) as j:
            fill(j, 14)
            j.commit(12)
            report = j.compact(retention="archive")
        assert report.segments_archived == 3
        assert report.segments_deleted == 0
        assert report.bytes_reclaimed > 0
        assert report.archived_through == 12
        archive = tmp_path / "j" / ARCHIVE_DIR
        assert len(list(archive.glob("segment-*.jsonl"))) == 3
        # The hot tier keeps only the active segment.
        assert not list((tmp_path / "j").glob("segment-*.jsonl"))

    def test_delete_retention_removes_files(self, tmp_path):
        with IngestJournal(tmp_path / "j", segment_records=4) as j:
            fill(j, 10)
            j.commit(8)
            report = j.compact(retention="delete")
        assert report.segments_deleted == 2
        assert report.segments_archived == 0
        assert not (tmp_path / "j" / ARCHIVE_DIR).exists()

    def test_uncovered_segments_stay(self, tmp_path):
        with IngestJournal(tmp_path / "j", segment_records=4) as j:
            fill(j, 12)
            j.commit(5)  # covers segment 0 only (offsets 0..3)
            report = j.compact()
        assert report.segments_archived == 1
        assert report.archived_through == 4
        remaining = sorted(p.name for p in
                           (tmp_path / "j").glob("segment-*.jsonl"))
        assert remaining == ["segment-00000001.jsonl",
                             "segment-00000002.jsonl"]

    def test_cursor_exactly_at_segment_boundary(self, tmp_path):
        # commit(4) with 4-record segments: segment 0 holds offsets
        # 0..3, all strictly below the cursor — covered exactly, no
        # off-by-one in either direction.
        with IngestJournal(tmp_path / "j", segment_records=4) as j:
            fill(j, 8)
            j.commit(4)
            report = j.compact()
            assert report.segments_archived == 1
            assert report.archived_through == 4
            # One record short of the next boundary: not covered.
            j.commit(7)
            assert j.compact().segments_archived == 0
            # At the boundary: covered.
            j.commit(8)
            assert j.compact().segments_archived == 1

    def test_never_touches_the_active_segment(self, tmp_path):
        # Compaction racing an in-flight rotation: the cursor covers
        # every record, including those in the .open tail, but only
        # sealed segments are reclaimed — the active file stays.
        with IngestJournal(tmp_path / "j", segment_records=4) as j:
            fill(j, 10)  # two sealed + a 2-record active tail
            j.commit(10)
            report = j.compact()
            assert report.segments_archived == 2
            assert len(list((tmp_path / "j").glob("*.open"))) == 1
            # Appends continue seamlessly after the reclaim, and the
            # segment sealed next waits for the next pass.
            fill(j, 2, start=10)  # seals segment 2
            assert j.append(_payloads(1, 12)[0]) == 12
            j.commit(13)
            assert j.compact().segments_archived == 1

    def test_segment_names_never_reused_after_archival(self, tmp_path):
        with IngestJournal(tmp_path / "j", segment_records=2) as j:
            fill(j, 4)
            j.commit(4)
            j.compact()
        # Reopen with the hot tier empty: the next sealed segment must
        # not collide with an archived name.
        with IngestJournal(tmp_path / "j", segment_records=2) as j:
            fill(j, 2, start=4)
        names = {p.name for p in
                 (tmp_path / "j").glob("segment-*.jsonl")}
        archived = {p.name for p in
                    (tmp_path / "j" / ARCHIVE_DIR).iterdir()}
        assert not names & archived

    def test_compact_is_idempotent(self, tmp_path):
        with IngestJournal(tmp_path / "j", segment_records=4) as j:
            fill(j, 9)
            j.commit(8)
            assert j.compact().segments_archived == 2
            again = j.compact()
        assert again.segments_archived == 0
        assert again.bytes_reclaimed == 0
        assert again.archived_through == 8

    def test_rejects_unknown_retention(self, tmp_path):
        with IngestJournal(tmp_path / "j") as j:
            with pytest.raises(StorageError):
                j.compact(retention="shred")


class TestArchiveReplay:
    def test_replay_from_zero_reads_the_archive_tier(self, tmp_path):
        with IngestJournal(tmp_path / "j", segment_records=4) as j:
            fill(j, 10)
            j.commit(8)
            j.compact()
            offsets = [r.offset for r in j.replay(0)]
        assert offsets == list(range(10))

    def test_replay_from_cursor_never_opens_the_archive(self,
                                                        tmp_path):
        with IngestJournal(tmp_path / "j", segment_records=4) as j:
            fill(j, 10)
            j.commit(8)
            j.compact()
        # Archive deleted out from under the manifest: resume-path
        # replay (>= archived_through) must not notice.
        shutil.rmtree(tmp_path / "j" / ARCHIVE_DIR)
        with IngestJournal(tmp_path / "j", segment_records=4) as j:
            assert [r.offset for r in j.replay()] == [8, 9]
            assert j.next_offset == 10

    def test_replay_below_boundary_without_archive_is_fatal(
            self, tmp_path):
        with IngestJournal(tmp_path / "j", segment_records=4) as j:
            fill(j, 10)
            j.commit(8)
            j.compact(retention="delete")
            with pytest.raises(StorageError) as excinfo:
                list(j.replay(0))
        # The error names the earliest offset that still replays.
        assert "earliest replayable offset is 8" in str(excinfo.value)

    def test_archived_corruption_is_fatal(self, tmp_path):
        with IngestJournal(tmp_path / "j", segment_records=4) as j:
            fill(j, 8)
            j.commit(8)
            j.compact()
        victim = next(iter(sorted(
            (tmp_path / "j" / ARCHIVE_DIR).iterdir())))
        lines = victim.read_text(encoding="utf-8").splitlines(True)
        lines[1] = lines[1].replace('"kind"', '"kinX"', 1)
        victim.write_text("".join(lines), encoding="utf-8")
        with IngestJournal(tmp_path / "j", segment_records=4) as j:
            with pytest.raises(StorageError):
                list(j.replay(0))


class TestManifestRepair:
    def test_interrupted_move_finishes_on_open(self, tmp_path):
        with IngestJournal(tmp_path / "j", segment_records=4) as j:
            fill(j, 10)
            j.commit(8)
            j.compact()
        # Simulate a crash between the manifest write and the move:
        # put one archived segment back in the hot directory.
        archive = tmp_path / "j" / ARCHIVE_DIR
        stray = sorted(archive.iterdir())[0]
        shutil.move(str(stray), tmp_path / "j" / stray.name)
        with IngestJournal(tmp_path / "j", segment_records=4) as j:
            assert [r.offset for r in j.replay(0)] == list(range(10))
        assert not (tmp_path / "j" / stray.name).exists()
        assert (archive / stray.name).exists()

    def test_unreadable_manifest_is_fatal(self, tmp_path):
        with IngestJournal(tmp_path / "j", segment_records=4) as j:
            fill(j, 8)
            j.commit(8)
            j.compact()
        (tmp_path / "j" / ARCHIVE_FILE).write_text("{broken",
                                                   encoding="utf-8")
        with pytest.raises(StorageError):
            IngestJournal(tmp_path / "j")


class TestPipelineResumeFromCompactedJournal:
    @pytest.fixture(scope="class")
    def archive_dataset(self):
        return generate_dataset(GeneratorConfig(
            num_articles=60, num_venues=4, num_authors=20,
            start_year=2000, end_year=2012, seed=13))

    def test_resume_never_reads_archived_segments(self,
                                                  archive_dataset,
                                                  tmp_path):
        source = SyntheticSource(sorted(archive_dataset.articles), 60,
                                 seed=5, cite_every=6)
        live = LiveRanker(archive_dataset,
                          checkpoint_dir=tmp_path / "ckpt")
        pipeline = IngestPipeline(
            live, source,
            IngestJournal(tmp_path / "journal", segment_records=8),
            coalescer=Coalescer(max_queue=48, min_batch=8,
                                max_batch=16),
            compaction="archive")
        report = pipeline.run()
        assert report.segments_archived > 0
        pipeline.journal.close()
        # Delete the archive tier entirely: a resume replays from the
        # committed cursor, above archived_through, and must succeed
        # without ever opening an archived file.
        shutil.rmtree(tmp_path / "journal" / ARCHIVE_DIR)
        resumed = IngestPipeline.resume(
            tmp_path / "ckpt", tmp_path / "journal", source,
            segment_records=8,
            coalescer=Coalescer(max_queue=48, min_batch=8,
                                max_batch=16))
        resumed_report = resumed.run()
        # Fully committed journal: nothing replays, the re-pulled feed
        # dedups away, and the corpus is unchanged.
        assert resumed_report.records_replayed == 0
        assert len(resumed.live.dataset.articles) == \
            len(pipeline.live.dataset.articles)

    def test_pipeline_reports_archival_metrics(self, archive_dataset,
                                               tmp_path):
        from repro.obs import Observability

        obs = Observability("archive-test")
        source = SyntheticSource(sorted(archive_dataset.articles), 40,
                                 seed=6)
        live = LiveRanker(archive_dataset,
                          checkpoint_dir=tmp_path / "ckpt")
        pipeline = IngestPipeline(
            live, source,
            IngestJournal(tmp_path / "journal", segment_records=8),
            coalescer=Coalescer(max_queue=48, min_batch=8,
                                max_batch=16),
            compaction="delete", obs=obs)
        report = pipeline.run()
        assert report.segments_archived > 0
        assert report.segments_reclaimed_bytes > 0
        exported = obs.metrics.to_prometheus()
        assert "repro_ingest_segments_archived" in exported
        assert "repro_ingest_segments_reclaimed_bytes" in exported
        metrics = report.as_metrics()
        assert metrics["segments_archived"] == report.segments_archived
