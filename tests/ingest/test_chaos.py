"""Chaos harness: crash-resume exactly-once, full-fault contract runs."""

import json

import pytest

from repro.cli import main
from repro.data.generator import GeneratorConfig, generate_dataset
from repro.ingest import run_ingest_sim

pytestmark = pytest.mark.ingest


@pytest.fixture(scope="module")
def chaos_dataset():
    return generate_dataset(GeneratorConfig(
        num_articles=100, num_venues=5, num_authors=30,
        start_year=2000, end_year=2014, seed=21))


class TestContract:
    def test_fault_free_run_holds(self, chaos_dataset):
        sim = run_ingest_sim(chaos_dataset, records=40, seed=1)
        assert sim.status == "ok"
        assert not sim.crashed
        assert sim.contract_held
        assert sim.metrics["records_lost"] == 0
        assert sim.metrics["duplicates_applied"] == 0
        assert sim.metrics["bit_identical"] is True

    def test_everything_at_once_holds(self, chaos_dataset, tmp_path):
        sim = run_ingest_sim(
            chaos_dataset, records=80, seed=2,
            duplicate_every=7, mangle_every=11, cite_every=5,
            stall_record=10, stall_seconds=0.001, fail_record=20,
            flaky_record=30, poison_record=40, crash_batch=2,
            truncate_journal=True, workdir=tmp_path / "sim")
        assert sim.status == "ok"
        assert sim.crashed and sim.resumed
        assert sim.contract_held, sim.render()
        assert sim.metrics["quarantined"] > 0  # mangled + poison
        assert sim.metrics["duplicates_skipped"] > 0
        assert sim.metrics["source_retries"] > 0
        assert sim.metrics["parse_crashes"] > 0


class TestCrashResume:
    def test_mid_batch_kill_is_exactly_once(self, chaos_dataset):
        """Satellite: kill the worker mid-batch, resume from the
        journal, assert exactly-once application and a bit-identical
        final ranking."""
        sim = run_ingest_sim(chaos_dataset, records=60, seed=3,
                             duplicate_every=6, crash_batch=1)
        assert sim.crashed and sim.resumed
        # The resumed run replayed the journal tail...
        assert sim.resume_pipeline.records_replayed > 0
        # ...and exactly-once held: nothing lost, nothing applied twice,
        # final ranking identical to the fault-free single-batch run.
        assert sim.metrics["records_lost"] == 0
        assert sim.metrics["duplicates_applied"] == 0
        assert sim.metrics["bit_identical"] is True
        assert sim.contract_held, sim.render()

    def test_crash_before_first_checkpoint(self, chaos_dataset):
        # Batch ordinal 0: the worker dies before any rotation exists,
        # so resume re-bootstraps from the base corpus and replays the
        # journal from offset 0.
        sim = run_ingest_sim(chaos_dataset, records=40, seed=4,
                             crash_batch=0)
        assert sim.crashed and sim.resumed
        assert sim.contract_held, sim.render()

    def test_lagged_checkpoint_replays_full_journal(self,
                                                    chaos_dataset):
        # Checkpoint every 3 batches, crash at ordinal 2: no rotation
        # ever landed, so the two applied batches are lost with the
        # worker and the resume re-bootstraps the base corpus and
        # replays the whole journal from offset 0. Every record still
        # lands exactly once — via replay or via fresh pull.
        sim = run_ingest_sim(chaos_dataset, records=60, seed=5,
                             crash_batch=2, checkpoint_batches=3)
        assert sim.crashed and sim.resumed
        assert sim.resume_pipeline.records_replayed > 0
        assert (sim.resume_pipeline.records_replayed
                + sim.resume_pipeline.records_pulled) == 60
        assert sim.contract_held, sim.render()

    def test_torn_journal_tail_is_absorbed(self, chaos_dataset):
        sim = run_ingest_sim(chaos_dataset, records=50, seed=6,
                             crash_batch=1, truncate_journal=True)
        assert sim.crashed and sim.resumed
        assert sim.metrics["torn_records_dropped"] >= 1
        assert sim.contract_held, sim.render()


class TestBackpressureUnderChaos:
    def test_tight_queue_stays_bounded(self, chaos_dataset):
        sim = run_ingest_sim(chaos_dataset, records=60, seed=7,
                             cite_every=4, min_batch=10, max_batch=10,
                             max_queue=12)
        assert sim.contract_held, sim.render()
        assert sim.metrics["backpressure_pauses"] > 0
        assert sim.metrics["peak_queue"] <= sim.metrics["queue_bound"]


class TestObservability:
    def test_metrics_and_spans_export(self, chaos_dataset):
        from repro.obs.handle import Observability

        obs = Observability("ingest-chaos")
        sim = run_ingest_sim(chaos_dataset, records=40, seed=8,
                             duplicate_every=9, crash_batch=1,
                             obs=obs)
        assert sim.contract_held, sim.render()
        exported = obs.metrics.to_prometheus()
        for name in ("repro_ingest_records_total",
                     "repro_ingest_duplicates_total",
                     "repro_ingest_batches_total",
                     "repro_ingest_commits_total",
                     "repro_ingest_queue_depth",
                     "repro_ingest_committed_offset",
                     "repro_ingest_visible_latency_records"):
            assert name in exported, name
        span_names = {span.name for span in obs.tracer.finished}
        assert {"ingest.run", "ingest.batch",
                "ingest.commit"} <= span_names


class TestPartitionedChaos:
    def test_acceptance_full_fault_plan_holds(self, chaos_dataset,
                                              tmp_path):
        # The acceptance run: K=4 with one stalled partition, two
        # partitions crashing at the same arrival seq with torn tails,
        # a duplicate storm straddling partitions, and a poison record
        # — with archival reclaiming segments while the chaos runs.
        sim = run_ingest_sim(
            chaos_dataset, records=100, seed=12,
            duplicate_every=6, mangle_every=13, cite_every=5,
            poison_record=44,
            partitions=4,
            crash_partitions=[(0, 30), (2, 30)],
            tear_partitions=[0, 2],
            stall_partitions=[(1, 15)],
            stall_seconds=0.001,
            segment_records=8, compaction="archive",
            workdir=tmp_path / "sim")
        assert sim.status == "ok"
        assert sim.contract_held, sim.render()
        assert sim.metrics["records_lost"] == 0
        assert sim.metrics["duplicates_applied"] == 0
        assert sim.metrics["bit_identical"] is True
        assert sim.metrics["partitions"] == 4
        assert sim.metrics["worker_crashes"] == 2
        assert sim.metrics["segments_archived"] > 0

    def test_coordinator_crash_resumes_partitioned(self,
                                                   chaos_dataset,
                                                   tmp_path):
        # The coordinator itself dies mid-run (on top of a worker
        # tear): resume picks up all K journals and finishes with the
        # same corpus the single-worker pipeline would produce.
        sim = run_ingest_sim(
            chaos_dataset, records=80, seed=13,
            duplicate_every=7, partitions=3, crash_batch=1,
            truncate_journal=True,
            workdir=tmp_path / "sim")
        assert sim.crashed and sim.resumed
        assert sim.contract_held, sim.render()
        assert sim.metrics["bit_identical"] is True

    def test_per_partition_metrics_exported(self, chaos_dataset):
        sim = run_ingest_sim(chaos_dataset, records=40, seed=14,
                             partitions=3)
        assert sim.contract_held, sim.render()
        for partition in range(3):
            assert f"p{partition}_committed_offset" in sim.metrics
            assert sim.metrics[f"p{partition}_worker_crashes"] == 0


class TestCli:
    def test_ingest_sim_command(self, tmp_path, capsys):
        json_path = tmp_path / "sim.json"
        report_path = tmp_path / "report.json"
        assert main(["ingest-sim", "--records", "40", "--seed", "1",
                     "--duplicate-every", "8", "--crash-batch", "1",
                     "--json", str(json_path),
                     "--report", str(report_path)]) == 0
        out = capsys.readouterr().out
        assert "delivery contract: HELD" in out
        payload = json.loads(json_path.read_text(encoding="utf-8"))
        assert payload["contract_held"] is True
        assert payload["crashed"] is True
        report = json.loads(report_path.read_text(encoding="utf-8"))
        assert report["metrics"]["records_lost"] == 0

    def test_ingest_sim_exit_code_on_bad_dataset(self, tmp_path):
        # A sim that cannot even load its corpus fails loudly.
        bad_dataset = tmp_path / "corrupt.jsonl"
        bad_dataset.write_text("{not json\n", encoding="utf-8")
        assert main(["ingest-sim", str(bad_dataset)]) == 1

    def test_ingest_sim_partitioned_flags(self, tmp_path, capsys):
        json_path = tmp_path / "sim.json"
        assert main(["ingest-sim", "--records", "60", "--seed", "2",
                     "--partitions", "4",
                     "--crash-partition", "0:20",
                     "--tear-partition", "0",
                     "--stall-partition", "1:10",
                     "--segment-records", "8",
                     "--compaction", "archive",
                     "--json", str(json_path)]) == 0
        out = capsys.readouterr().out
        assert "delivery contract: HELD" in out
        payload = json.loads(json_path.read_text(encoding="utf-8"))
        assert payload["contract_held"] is True
        assert payload["metrics"]["partitions"] == 4
        assert payload["metrics"]["worker_crashes"] == 1
        assert payload["metrics"]["segments_archived"] > 0

    def test_ingest_sim_rejects_malformed_partition_fault(self):
        with pytest.raises(SystemExit):
            main(["ingest-sim", "--partitions", "2",
                  "--crash-partition", "zero:ten"])

    def test_ingest_compact_command(self, tmp_path, capsys):
        from repro.ingest import IngestJournal

        with IngestJournal(tmp_path / "journal",
                           segment_records=4) as journal:
            for offset in range(10):
                journal.append({"kind": "article", "id": offset,
                                "year": 2020, "refs": []})
            journal.commit(8)
        json_path = tmp_path / "compact.json"
        assert main(["ingest-compact", str(tmp_path / "journal"),
                     "--retention", "archive",
                     "--json", str(json_path)]) == 0
        out = capsys.readouterr().out
        assert "archived 2 segment(s)" in out
        payload = json.loads(json_path.read_text(encoding="utf-8"))
        assert payload["segments_archived"] == 2
        assert payload["bytes_reclaimed"] > 0

    def test_ingest_compact_on_missing_journal_fails(self, tmp_path):
        assert main(["ingest-compact",
                     str(tmp_path / "nope" / "journal")]) == 1
