"""IngestPipeline stages: dedup tiers, backpressure, quarantine."""

import json

import pytest

from repro.data.generator import GeneratorConfig, generate_dataset
from repro.engine.live import LiveRanker
from repro.engine.updates import apply_update
from repro.ingest import (
    Coalescer,
    IngestJournal,
    IngestPipeline,
    SyntheticSource,
    fault_free_reference,
)
from repro.ingest.sim import datasets_equal
from repro.resilience.faults import FaultPlan

pytestmark = pytest.mark.ingest


@pytest.fixture(scope="module")
def base_dataset():
    return generate_dataset(GeneratorConfig(
        num_articles=60, num_venues=4, num_authors=20,
        start_year=2000, end_year=2012, seed=7))


class ListSource:
    """Seekable feed over an explicit record list (test double)."""

    def __init__(self, records):
        self._records = list(records)

    def __len__(self):
        return len(self._records)

    def get(self, position):
        if position >= len(self._records):
            return None
        return json.loads(json.dumps(self._records[position]))


def make_pipeline(dataset, source, tmp_path, **kwargs):
    live = LiveRanker(dataset, checkpoint_dir=tmp_path / "ckpt")
    journal = IngestJournal(tmp_path / "journal")
    return IngestPipeline(live, source, journal, **kwargs)


class TestHappyPath:
    def test_feed_lands_and_commits(self, base_dataset, tmp_path):
        source = SyntheticSource(sorted(base_dataset.articles), 30,
                                 seed=1)
        pipeline = make_pipeline(base_dataset, source, tmp_path)
        report = pipeline.run()
        assert report.records_pulled == 30
        assert report.articles_applied == 30
        assert report.quarantined == 0
        # Every pulled record is durably committed at the end.
        assert report.committed_offset == 30
        reference = apply_update(
            base_dataset, fault_free_reference(source, base_dataset))
        assert datasets_equal(pipeline.live.dataset, reference)

    def test_non_durable_pipeline_never_commits(self, base_dataset,
                                                tmp_path):
        source = SyntheticSource(sorted(base_dataset.articles), 10,
                                 seed=1)
        live = LiveRanker(base_dataset)  # no checkpoint_dir
        journal = IngestJournal(tmp_path / "journal")
        report = IngestPipeline(live, source, journal).run()
        assert report.articles_applied == 10
        assert report.committed_offset == 0


class TestDedupTiers:
    def test_duplicate_storm_applies_once(self, base_dataset, tmp_path):
        source = SyntheticSource(sorted(base_dataset.articles), 40,
                                 seed=2, duplicate_every=3)
        pipeline = make_pipeline(base_dataset, source, tmp_path)
        report = pipeline.run()
        assert report.duplicates_skipped > 0
        reference = apply_update(
            base_dataset, fault_free_reference(source, base_dataset))
        assert datasets_equal(pipeline.live.dataset, reference)

    def test_conflicting_redelivery_first_write_wins(self, base_dataset,
                                                     tmp_path):
        new_id = max(base_dataset.articles) + 1
        source = ListSource([
            {"kind": "article", "id": new_id, "title": "first",
             "year": 2020, "refs": []},
            {"kind": "article", "id": new_id, "title": "second",
             "year": 2021, "refs": []},
        ])
        pipeline = make_pipeline(base_dataset, source, tmp_path)
        report = pipeline.run()
        assert report.conflicts_quarantined == 1
        assert report.quarantined == 1
        assert pipeline.live.dataset.articles[new_id].title == "first"

    def test_replay_after_commit_is_skipped(self, base_dataset,
                                            tmp_path):
        source = SyntheticSource(sorted(base_dataset.articles), 12,
                                 seed=3)
        pipeline = make_pipeline(base_dataset, source, tmp_path)
        pipeline.run()
        # Second incarnation over the same journal + drained source:
        # replays nothing past the cursor, applies nothing twice.
        resumed = IngestPipeline.resume(
            tmp_path / "ckpt", tmp_path / "journal", source,
            incarnation=1)
        report = resumed.run()
        assert report.articles_applied == 0
        assert report.citations_applied == 0
        assert len(resumed.live.dataset.articles) == \
            len(base_dataset.articles) + 12


class TestQuarantine:
    def test_mangled_records_quarantined_with_location(self,
                                                       base_dataset,
                                                       tmp_path):
        source = SyntheticSource(sorted(base_dataset.articles), 20,
                                 seed=4, mangle_every=5)
        pipeline = make_pipeline(base_dataset, source, tmp_path)
        report = pipeline.run()
        assert report.quarantined == 4  # positions 1, 6, 11, 16
        assert "record 1" in report.parse_report.locations
        assert "[record 1]" in report.parse_report.summary()

    def test_citation_with_unknown_endpoint_is_poison(self,
                                                      base_dataset,
                                                      tmp_path):
        known = min(base_dataset.articles)
        source = ListSource([
            {"kind": "cite", "citing": known, "cited": 999999},
        ])
        pipeline = make_pipeline(base_dataset, source, tmp_path)
        report = pipeline.run()
        assert report.quarantined == 1
        assert report.citations_applied == 0

    def test_poison_record_exhausts_parse_attempts(self, base_dataset,
                                                   tmp_path):
        source = SyntheticSource(sorted(base_dataset.articles), 10,
                                 seed=5)
        plan = FaultPlan(seed=0).crash_parser(4, times=10)
        pipeline = make_pipeline(base_dataset, source, tmp_path,
                                 fault_plan=plan, parse_attempts=3)
        report = pipeline.run()
        assert report.parse_crashes == 3
        assert report.quarantined == 1
        assert report.articles_applied == 9

    def test_flaky_parser_recovers_within_budget(self, base_dataset,
                                                 tmp_path):
        source = SyntheticSource(sorted(base_dataset.articles), 10,
                                 seed=5)
        plan = FaultPlan(seed=0).crash_parser(4, times=1)
        pipeline = make_pipeline(base_dataset, source, tmp_path,
                                 fault_plan=plan, parse_attempts=2)
        report = pipeline.run()
        assert report.parse_crashes == 1
        assert report.quarantined == 0
        assert report.articles_applied == 10


class TestResilience:
    def test_transient_source_error_is_retried(self, base_dataset,
                                               tmp_path):
        source = SyntheticSource(sorted(base_dataset.articles), 10,
                                 seed=6)
        plan = FaultPlan(seed=0).fail_source(3, times=2)
        pipeline = make_pipeline(base_dataset, source, tmp_path,
                                 fault_plan=plan)
        report = pipeline.run()
        assert report.source_retries == 2
        assert report.records_pulled == 10
        assert report.articles_applied == 10


class TestBackpressure:
    def test_tight_queue_pauses_and_stays_bounded(self, base_dataset,
                                                  tmp_path):
        source = SyntheticSource(sorted(base_dataset.articles), 60,
                                 seed=8, cite_every=4)
        # min_batch above the high watermark (0.75 * 12 = 9): the pull
        # loop hits PAUSE and must drain before it may pull again.
        pipeline = make_pipeline(
            base_dataset, source, tmp_path,
            coalescer=Coalescer(max_queue=12, min_batch=10,
                                max_batch=10))
        report = pipeline.run()
        assert report.backpressure_pauses > 0
        assert 0 < report.peak_queue <= 12
        reference = apply_update(
            base_dataset, fault_free_reference(source, base_dataset))
        assert datasets_equal(pipeline.live.dataset, reference)

    def test_peak_counts_the_depth_a_shed_offer_found(self):
        # Regression: a producer that only ever collides with a full
        # queue used to leave peak at the pre-saturation depth — the
        # SHED rejection must register the depth it found so the gauge
        # reflects saturation.
        from repro.errors import IngestError
        from repro.ingest.source import ParsedItem

        coalescer = Coalescer(max_queue=4, min_batch=1, max_batch=4)
        for offset in range(4):
            coalescer.offer(ParsedItem(
                offset=offset, kind="cite", fingerprint=offset,
                citation=(offset, offset + 1)))
        with pytest.raises(IngestError):
            coalescer.offer(ParsedItem(
                offset=4, kind="cite", fingerprint=4,
                citation=(4, 5)))
        assert coalescer.peak == 4
        assert len(coalescer) == 4  # nothing was enqueued

    def test_freshness_accounting_is_populated(self, base_dataset,
                                               tmp_path):
        source = SyntheticSource(sorted(base_dataset.articles), 30,
                                 seed=9)
        pipeline = make_pipeline(base_dataset, source, tmp_path)
        report = pipeline.run()
        assert report.freshness_samples == 30
        assert report.freshness_max_records >= \
            report.freshness_mean_records > 0
