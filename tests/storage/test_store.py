"""SQLite store tests."""

import pytest

from repro.errors import StorageError
from repro.storage.store import DatasetStore


@pytest.fixture()
def store():
    with DatasetStore(":memory:") as s:
        yield s


class TestDatasets:
    def test_roundtrip(self, store, tiny_dataset):
        store.save_dataset(tiny_dataset)
        loaded = store.load_dataset("tiny")
        assert loaded.articles == tiny_dataset.articles
        assert loaded.venues == tiny_dataset.venues
        assert loaded.authors == tiny_dataset.authors

    def test_list_and_has(self, store, tiny_dataset):
        assert store.list_datasets() == []
        store.save_dataset(tiny_dataset)
        assert store.list_datasets() == ["tiny"]
        assert store.has_dataset("tiny")
        assert not store.has_dataset("other")

    def test_duplicate_save_rejected(self, store, tiny_dataset):
        store.save_dataset(tiny_dataset)
        with pytest.raises(StorageError, match="already stored"):
            store.save_dataset(tiny_dataset)

    def test_overwrite(self, store, tiny_dataset):
        store.save_dataset(tiny_dataset)
        store.save_dataset(tiny_dataset, overwrite=True)
        assert store.list_datasets() == ["tiny"]

    def test_delete(self, store, tiny_dataset):
        store.save_dataset(tiny_dataset)
        store.delete_dataset("tiny")
        assert store.list_datasets() == []
        with pytest.raises(StorageError):
            store.delete_dataset("tiny")

    def test_load_missing(self, store):
        with pytest.raises(StorageError, match="no stored dataset"):
            store.load_dataset("ghost")

    def test_generated_roundtrip(self, store, small_dataset):
        store.save_dataset(small_dataset)
        loaded = store.load_dataset(small_dataset.name)
        assert loaded.num_articles == small_dataset.num_articles
        assert loaded.num_citations == small_dataset.num_citations
        sample = sorted(small_dataset.articles)[123]
        assert loaded.articles[sample] == small_dataset.articles[sample]

    def test_file_persistence(self, tiny_dataset, tmp_path):
        path = tmp_path / "store.db"
        with DatasetStore(path) as first:
            first.save_dataset(tiny_dataset)
        with DatasetStore(path) as second:
            assert second.list_datasets() == ["tiny"]
            assert second.load_dataset("tiny").num_articles == 5


class TestRankings:
    def test_roundtrip(self, store, tiny_dataset):
        store.save_dataset(tiny_dataset)
        scores = {0: 0.5, 1: 0.3, 2: 0.2}
        store.save_ranking("tiny", "pr", scores)
        assert store.load_ranking("tiny", "pr") == scores
        assert store.list_rankings("tiny") == ["pr"]

    def test_requires_dataset(self, store):
        with pytest.raises(StorageError):
            store.save_ranking("ghost", "pr", {1: 1.0})

    def test_duplicate_method_rejected(self, store, tiny_dataset):
        store.save_dataset(tiny_dataset)
        store.save_ranking("tiny", "pr", {0: 1.0})
        with pytest.raises(StorageError, match="already stored"):
            store.save_ranking("tiny", "pr", {0: 2.0})
        store.save_ranking("tiny", "pr", {0: 2.0}, overwrite=True)
        assert store.load_ranking("tiny", "pr") == {0: 2.0}

    def test_top_articles(self, store, tiny_dataset):
        store.save_dataset(tiny_dataset)
        store.save_ranking("tiny", "pr", {0: 0.1, 1: 0.9, 2: 0.5})
        assert store.top_articles("tiny", "pr", limit=2) == \
            [(1, 0.9), (2, 0.5)]

    def test_load_missing_ranking(self, store, tiny_dataset):
        store.save_dataset(tiny_dataset)
        with pytest.raises(StorageError, match="no ranking"):
            store.load_ranking("tiny", "pr")


class TestAnalytics:
    def test_citation_counts(self, store, tiny_dataset):
        store.save_dataset(tiny_dataset)
        counts = dict(store.citation_counts("tiny"))
        assert counts == {0: 2, 1: 2, 2: 1}

    def test_citation_counts_limit(self, store, tiny_dataset):
        store.save_dataset(tiny_dataset)
        assert len(store.citation_counts("tiny", limit=1)) == 1

    def test_articles_per_year(self, store, tiny_dataset):
        store.save_dataset(tiny_dataset)
        per_year = store.articles_per_year("tiny")
        assert per_year == {2000: 1, 2003: 1, 2005: 1, 2008: 1, 2010: 1}

    def test_analytics_require_dataset(self, store):
        with pytest.raises(StorageError):
            store.citation_counts("ghost")
        with pytest.raises(StorageError):
            store.articles_per_year("ghost")
