"""SQLite store tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.storage.store import DatasetStore


@pytest.fixture()
def store():
    with DatasetStore(":memory:") as s:
        yield s


class TestDatasets:
    def test_roundtrip(self, store, tiny_dataset):
        store.save_dataset(tiny_dataset)
        loaded = store.load_dataset("tiny")
        assert loaded.articles == tiny_dataset.articles
        assert loaded.venues == tiny_dataset.venues
        assert loaded.authors == tiny_dataset.authors

    def test_list_and_has(self, store, tiny_dataset):
        assert store.list_datasets() == []
        store.save_dataset(tiny_dataset)
        assert store.list_datasets() == ["tiny"]
        assert store.has_dataset("tiny")
        assert not store.has_dataset("other")

    def test_duplicate_save_rejected(self, store, tiny_dataset):
        store.save_dataset(tiny_dataset)
        with pytest.raises(StorageError, match="already stored"):
            store.save_dataset(tiny_dataset)

    def test_overwrite(self, store, tiny_dataset):
        store.save_dataset(tiny_dataset)
        store.save_dataset(tiny_dataset, overwrite=True)
        assert store.list_datasets() == ["tiny"]

    def test_delete(self, store, tiny_dataset):
        store.save_dataset(tiny_dataset)
        store.delete_dataset("tiny")
        assert store.list_datasets() == []
        with pytest.raises(StorageError):
            store.delete_dataset("tiny")

    def test_load_missing(self, store):
        with pytest.raises(StorageError, match="no stored dataset"):
            store.load_dataset("ghost")

    def test_generated_roundtrip(self, store, small_dataset):
        store.save_dataset(small_dataset)
        loaded = store.load_dataset(small_dataset.name)
        assert loaded.num_articles == small_dataset.num_articles
        assert loaded.num_citations == small_dataset.num_citations
        sample = sorted(small_dataset.articles)[123]
        assert loaded.articles[sample] == small_dataset.articles[sample]

    def test_file_persistence(self, tiny_dataset, tmp_path):
        path = tmp_path / "store.db"
        with DatasetStore(path) as first:
            first.save_dataset(tiny_dataset)
        with DatasetStore(path) as second:
            assert second.list_datasets() == ["tiny"]
            assert second.load_dataset("tiny").num_articles == 5


class TestRankings:
    def test_roundtrip(self, store, tiny_dataset):
        store.save_dataset(tiny_dataset)
        scores = {0: 0.5, 1: 0.3, 2: 0.2}
        store.save_ranking("tiny", "pr", scores)
        assert store.load_ranking("tiny", "pr") == scores
        assert store.list_rankings("tiny") == ["pr"]

    def test_requires_dataset(self, store):
        with pytest.raises(StorageError):
            store.save_ranking("ghost", "pr", {1: 1.0})

    def test_duplicate_method_rejected(self, store, tiny_dataset):
        store.save_dataset(tiny_dataset)
        store.save_ranking("tiny", "pr", {0: 1.0})
        with pytest.raises(StorageError, match="already stored"):
            store.save_ranking("tiny", "pr", {0: 2.0})
        store.save_ranking("tiny", "pr", {0: 2.0}, overwrite=True)
        assert store.load_ranking("tiny", "pr") == {0: 2.0}

    def test_top_articles(self, store, tiny_dataset):
        store.save_dataset(tiny_dataset)
        store.save_ranking("tiny", "pr", {0: 0.1, 1: 0.9, 2: 0.5})
        assert store.top_articles("tiny", "pr", limit=2) == \
            [(1, 0.9), (2, 0.5)]

    def test_load_missing_ranking(self, store, tiny_dataset):
        store.save_dataset(tiny_dataset)
        with pytest.raises(StorageError, match="no ranking"):
            store.load_ranking("tiny", "pr")


class TestAnalytics:
    def test_citation_counts(self, store, tiny_dataset):
        store.save_dataset(tiny_dataset)
        counts = dict(store.citation_counts("tiny"))
        assert counts == {0: 2, 1: 2, 2: 1}

    def test_citation_counts_limit(self, store, tiny_dataset):
        store.save_dataset(tiny_dataset)
        assert len(store.citation_counts("tiny", limit=1)) == 1

    def test_articles_per_year(self, store, tiny_dataset):
        store.save_dataset(tiny_dataset)
        per_year = store.articles_per_year("tiny")
        assert per_year == {2000: 1, 2003: 1, 2005: 1, 2008: 1, 2010: 1}

    def test_analytics_require_dataset(self, store):
        with pytest.raises(StorageError):
            store.citation_counts("ghost")
        with pytest.raises(StorageError):
            store.articles_per_year("ghost")


def _dataset_with_references(reference_lists):
    """Articles 0..n-1 (ascending years); article i cites per the list."""
    from repro.data.schema import Article, ScholarlyDataset

    dataset = ScholarlyDataset(name="refs")
    for i, references in enumerate(reference_lists):
        dataset.add_article(Article(id=i, title=f"a{i}", year=2000 + i,
                                    venue_id=None, author_ids=(),
                                    references=tuple(references)))
    return dataset


class TestDuplicateReferences:
    """Regression: save_dataset used to collapse repeated citations
    (dict.fromkeys), so multi-edges lost their weight after a round-trip."""

    def test_duplicates_survive_roundtrip(self, store):
        dataset = _dataset_with_references([(), (0,), (0, 0, 1, 0)])
        store.save_dataset(dataset)
        loaded = store.load_dataset("refs")
        assert loaded.articles[2].references == (0, 0, 1, 0)
        assert loaded.articles == dataset.articles

    def test_multi_edge_weight_preserved_in_csr(self, store):
        dataset = _dataset_with_references([(), (0, 0, 0)])
        store.save_dataset(dataset)
        graph = store.load_dataset("refs").citation_csr()
        assert graph.num_edges == 3

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(0, 4), min_size=0, max_size=8))
    def test_any_reference_multiset_roundtrips(self, refs):
        dataset = _dataset_with_references([(), (), (), (), (), refs])
        with DatasetStore(":memory:") as isolated:
            isolated.save_dataset(dataset)
            loaded = isolated.load_dataset("refs")
        assert loaded.articles[5].references == tuple(refs)


class TestSchemaMigration:
    def _write_v1_store(self, path, rows):
        """Hand-build a v1 database file (no position column)."""
        import sqlite3

        conn = sqlite3.connect(str(path))
        with conn:
            conn.executescript("""
                CREATE TABLE meta (key TEXT PRIMARY KEY,
                                   value TEXT NOT NULL);
                CREATE TABLE datasets (name TEXT PRIMARY KEY,
                                       num_articles INTEGER NOT NULL);
                CREATE TABLE articles (
                    dataset TEXT NOT NULL, id INTEGER NOT NULL,
                    title TEXT NOT NULL, year INTEGER NOT NULL,
                    venue_id INTEGER, quality REAL,
                    PRIMARY KEY (dataset, id));
                CREATE TABLE citations (
                    dataset TEXT NOT NULL, citing INTEGER NOT NULL,
                    cited INTEGER NOT NULL,
                    PRIMARY KEY (dataset, citing, cited));
                CREATE TABLE authorship (
                    dataset TEXT NOT NULL, article_id INTEGER NOT NULL,
                    author_id INTEGER NOT NULL, position INTEGER NOT NULL,
                    PRIMARY KEY (dataset, article_id, position));
                CREATE TABLE venues (
                    dataset TEXT NOT NULL, id INTEGER NOT NULL,
                    name TEXT NOT NULL, prestige REAL,
                    PRIMARY KEY (dataset, id));
                CREATE TABLE authors (
                    dataset TEXT NOT NULL, id INTEGER NOT NULL,
                    name TEXT NOT NULL, PRIMARY KEY (dataset, id));
                CREATE TABLE rankings (
                    dataset TEXT NOT NULL, method TEXT NOT NULL,
                    article_id INTEGER NOT NULL, score REAL NOT NULL,
                    PRIMARY KEY (dataset, method, article_id));
                INSERT INTO meta VALUES ('schema_version', '1');
                INSERT INTO datasets VALUES ('old', 3);
                INSERT INTO articles VALUES ('old', 0, 'a0', 2000,
                                             NULL, NULL);
                INSERT INTO articles VALUES ('old', 1, 'a1', 2001,
                                             NULL, NULL);
                INSERT INTO articles VALUES ('old', 2, 'a2', 2002,
                                             NULL, NULL);
            """)
            conn.executemany("INSERT INTO citations VALUES (?, ?, ?)",
                             rows)
        conn.close()

    def test_v1_file_migrates_in_place(self, tmp_path):
        path = tmp_path / "v1.db"
        self._write_v1_store(path, [("old", 2, 0), ("old", 2, 1),
                                    ("old", 1, 0)])
        with DatasetStore(path) as store:
            loaded = store.load_dataset("old")
            assert loaded.articles[2].references == (0, 1)
            assert loaded.articles[1].references == (0,)
            # Version stamp advanced so the migration never re-runs.
            assert store._stored_schema_version() == 2
        # Re-opening the migrated file is a no-op.
        with DatasetStore(path) as store:
            assert store.load_dataset("old").articles[2].references == (0, 1)

    def test_fresh_store_is_current_version(self, store):
        from repro.storage.store import _SCHEMA_VERSION

        assert store._stored_schema_version() == _SCHEMA_VERSION


class TestRankingValidation:
    """Regression: save_ranking accepted article ids absent from the
    dataset, poisoning top_articles and downstream indexes."""

    def test_unknown_ids_rejected(self, store, tiny_dataset):
        store.save_dataset(tiny_dataset)
        with pytest.raises(StorageError, match="not in dataset"):
            store.save_ranking("tiny", "pr", {0: 0.5, 99: 0.5})
        # Nothing was written.
        assert store.list_rankings("tiny") == []

    def test_error_lists_offenders_with_preview(self, store, tiny_dataset):
        store.save_dataset(tiny_dataset)
        bad = {i: 0.1 for i in range(100, 110)}
        with pytest.raises(StorageError, match=r"10 article id\(s\)"):
            store.save_ranking("tiny", "pr", bad)

    def test_known_ids_still_accepted(self, store, tiny_dataset):
        store.save_dataset(tiny_dataset)
        store.save_ranking("tiny", "pr", {0: 0.6, 4: 0.4})
        assert store.load_ranking("tiny", "pr") == {0: 0.6, 4: 0.4}


class TestFileBackedResilience:
    """File-backed stores get WAL journaling and wrapped sqlite errors."""

    def test_file_store_uses_wal(self, tiny_dataset, tmp_path):
        store = DatasetStore(tmp_path / "articles.db")
        mode = store._conn.execute(
            "PRAGMA journal_mode").fetchone()[0]
        assert mode.lower() == "wal"
        busy = store._conn.execute(
            "PRAGMA busy_timeout").fetchone()[0]
        assert busy == 5000
        store.save_dataset(tiny_dataset)
        assert store.has_dataset("tiny")

    def test_busy_timeout_is_configurable(self, tmp_path):
        store = DatasetStore(tmp_path / "articles.db",
                             busy_timeout_ms=250)
        busy = store._conn.execute(
            "PRAGMA busy_timeout").fetchone()[0]
        assert busy == 250

    def test_memory_store_keeps_default_journal(self):
        mode = DatasetStore()._conn.execute(
            "PRAGMA journal_mode").fetchone()[0]
        assert mode.lower() == "memory"

    def test_unopenable_path_raises_storage_error(self, tmp_path):
        with pytest.raises(StorageError, match="cannot open"):
            DatasetStore(tmp_path / "no" / "such" / "dir" / "x.db")

    def test_garbage_file_raises_storage_error(self, tmp_path):
        path = tmp_path / "garbage.db"
        path.write_bytes(b"this is not a sqlite database, not even close")
        with pytest.raises(StorageError):
            DatasetStore(path).list_datasets()

    def test_operations_on_closed_connection_are_wrapped(self,
                                                         tiny_dataset):
        store = DatasetStore()
        store.save_dataset(tiny_dataset)
        store._conn.close()
        with pytest.raises(StorageError, match="sqlite failure"):
            store.list_datasets()
