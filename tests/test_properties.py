"""Cross-module property-based tests.

Invariants that must hold across the whole stack regardless of input
shape: solver fixed-point agreement, distribution conservation,
serialization round-trips, metric bounds, index/ranking consistency.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.schema import Article, Author, ScholarlyDataset, Venue
from repro.graph.csr import CSRGraph


def graph_strategy(max_nodes=10, max_edges=30):
    node = st.integers(0, max_nodes - 1)
    return st.lists(st.tuples(node, node), min_size=0,
                    max_size=max_edges).map(
        lambda edges: CSRGraph.from_edges(edges, nodes=range(max_nodes)))


years_strategy = st.lists(st.integers(1980, 2020), min_size=10,
                          max_size=10).map(np.array)


def dataset_strategy():
    """Small random-but-consistent datasets (refs point backward)."""

    @st.composite
    def build(draw):
        n = draw(st.integers(2, 15))
        num_venues = draw(st.integers(1, 3))
        num_authors = draw(st.integers(1, 5))
        dataset = ScholarlyDataset(name="prop")
        for venue_id in range(num_venues):
            dataset.add_venue(Venue(id=venue_id, name=f"v{venue_id}"))
        for author_id in range(num_authors):
            dataset.add_author(Author(id=author_id, name=f"a{author_id}"))
        for article_id in range(n):
            refs = ()
            if article_id > 0:
                refs = tuple(sorted(draw(st.sets(
                    st.integers(0, article_id - 1), max_size=3))))
            dataset.add_article(Article(
                id=article_id, title=f"t{article_id}",
                year=2000 + article_id // 2,
                venue_id=draw(st.integers(0, num_venues - 1)),
                author_ids=(draw(st.integers(0, num_authors - 1)),),
                references=refs,
                quality=draw(st.floats(0.1, 10.0))))
        return dataset

    return build()


class TestSolverAgreement:
    @settings(max_examples=20, deadline=None)
    @given(graph_strategy(), years_strategy)
    def test_all_twpr_solvers_share_fixed_point(self, graph, years):
        from repro.core.twpr import time_weighted_pagerank

        results = [time_weighted_pagerank(graph, years, method=method,
                                          tol=1e-12, max_iter=1000)
                   for method in ("power", "gauss_seidel", "levels")]
        for result in results[1:]:
            assert np.abs(result.scores
                          - results[0].scores).sum() < 1e-7

    @settings(max_examples=15, deadline=None)
    @given(graph_strategy())
    def test_block_engine_matches_pagerank(self, graph):
        from repro.engine.blocks import BlockEngine
        from repro.graph.partition import range_partition
        from repro.ranking.pagerank import pagerank

        reference = pagerank(graph, tol=1e-12, max_iter=1000)
        partition = range_partition(graph, 3)
        result = BlockEngine(graph, partition).run(tol=1e-12,
                                                   max_supersteps=1000)
        assert np.abs(result.scores - reference.scores).sum() < 1e-7


class TestDistributionInvariants:
    @settings(max_examples=20, deadline=None)
    @given(graph_strategy(), years_strategy)
    def test_popularity_mass_equals_decayed_edges(self, graph, years):
        from repro.core.popularity import popularity_scores
        from repro.core.time_weight import exponential_decay

        decay = exponential_decay(0.3)
        scores = popularity_scores(graph, years, 2020, decay=decay)
        src_idx, _, _ = graph.edge_array()
        expected_total = decay(2020.0 - years[src_idx]).sum()
        assert scores.sum() == pytest.approx(expected_total)

    @settings(max_examples=20, deadline=None)
    @given(graph_strategy())
    def test_monte_carlo_is_distribution(self, graph):
        from repro.ranking.montecarlo import monte_carlo_pagerank

        result = monte_carlo_pagerank(graph, walks_per_node=3, seed=1)
        assert result.scores.sum() == pytest.approx(1.0)
        assert (result.scores >= 0).all()


class TestSerializationRoundTrips:
    @settings(max_examples=15, deadline=None)
    @given(dataset=dataset_strategy())
    def test_jsonl_roundtrip(self, dataset, tmp_path_factory):
        from repro.data.io import load_dataset_jsonl, save_dataset_jsonl

        path = tmp_path_factory.mktemp("prop") / "ds.jsonl"
        save_dataset_jsonl(dataset, path)
        loaded = load_dataset_jsonl(path)
        assert loaded.articles == dataset.articles
        assert loaded.venues == dataset.venues
        assert loaded.authors == dataset.authors

    @settings(max_examples=10, deadline=None)
    @given(dataset_strategy())
    def test_store_roundtrip(self, dataset):
        from repro.storage.store import DatasetStore

        with DatasetStore(":memory:") as store:
            store.save_dataset(dataset)
            loaded = store.load_dataset(dataset.name)
        assert loaded.articles == dataset.articles


class TestRankingConsistency:
    @settings(max_examples=10, deadline=None)
    @given(dataset_strategy())
    def test_index_agrees_with_result_top(self, dataset):
        from repro.core.model import ArticleRanker
        from repro.query import RankIndex

        result = ArticleRanker().rank(dataset)
        index = RankIndex(dataset, result.by_id())
        k = min(5, dataset.num_articles)
        assert [entry.article_id for entry in index.top(k)] == \
            [article_id for article_id, _ in result.top(k)]

    @settings(max_examples=10, deadline=None)
    @given(dataset_strategy())
    def test_model_scores_bounded(self, dataset):
        from repro.core.model import ArticleRanker

        result = ArticleRanker().rank(dataset)
        # Rank normalization bounds the blend into [0, 1].
        assert (result.scores >= -1e-12).all()
        assert (result.scores <= 1.0 + 1e-12).all()


class TestMetricBounds:
    @settings(max_examples=30, deadline=None)
    @given(st.dictionaries(st.integers(0, 30),
                           st.floats(0, 1, allow_nan=False),
                           min_size=4, max_size=30),
           st.integers(1, 10))
    def test_ndcg_and_recall_bounded(self, scores, k):
        from repro.eval.metrics import ndcg_at_k, recall_at_k

        ids = sorted(scores)
        relevance = {i: float(abs(hash(i)) % 5) for i in ids}
        value = ndcg_at_k(scores, relevance, k)
        assert 0.0 <= value <= 1.0 + 1e-12
        recall = recall_at_k(scores, set(ids[:2]), k)
        assert 0.0 <= recall <= 1.0
