"""CLI end-to-end tests (drive main() in-process)."""

import pytest

from repro.cli import main
from repro.data.io import load_dataset_jsonl


@pytest.fixture()
def dataset_path(tmp_path):
    path = tmp_path / "ds.jsonl"
    code = main(["generate", str(path), "--articles", "500",
                 "--venues", "8", "--authors", "100", "--seed", "3"])
    assert code == 0
    return path


class TestGenerate:
    def test_writes_dataset(self, dataset_path):
        dataset = load_dataset_jsonl(dataset_path)
        assert dataset.num_articles == 500
        assert dataset.num_venues == 8

    def test_reports_what_it_wrote(self, tmp_path, capsys):
        path = tmp_path / "out.jsonl"
        assert main(["generate", str(path), "--articles", "100",
                     "--venues", "5", "--authors", "30"]) == 0
        assert "wrote 100 articles" in capsys.readouterr().out


class TestRank:
    def test_prints_top(self, dataset_path, capsys):
        assert main(["rank", str(dataset_path), "--top", "3"]) == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines()
                 if line and not line.startswith("#")]
        assert len(lines) == 3

    def test_custom_weights(self, dataset_path, capsys):
        assert main(["rank", str(dataset_path), "--top", "2",
                     "--weights", "1,0,0"]) == 0

    def test_bad_weights_error(self, dataset_path, capsys):
        assert main(["rank", str(dataset_path),
                     "--weights", "oops"]) == 1
        assert "error:" in capsys.readouterr().err


class TestStats:
    def test_prints_stats(self, dataset_path, capsys):
        assert main(["stats", str(dataset_path)]) == 0
        out = capsys.readouterr().out
        assert "|V|: 500" in out
        assert "venues: 8" in out


class TestEvaluate:
    def test_prints_metrics(self, dataset_path, capsys):
        assert main(["evaluate", str(dataset_path),
                     "--pairs", "100"]) == 0
        out = capsys.readouterr().out
        assert "pairwise:" in out
        assert "spearman:" in out


class TestStore:
    def test_store_and_list(self, dataset_path, tmp_path, capsys):
        db = tmp_path / "s.db"
        assert main(["store", str(db), str(dataset_path)]) == 0
        assert main(["store", str(db)]) == 0
        out = capsys.readouterr().out
        assert "synthetic-3" in out

    def test_duplicate_store_fails_without_overwrite(self, dataset_path,
                                                     tmp_path, capsys):
        db = tmp_path / "s.db"
        assert main(["store", str(db), str(dataset_path)]) == 0
        assert main(["store", str(db), str(dataset_path)]) == 1
        assert main(["store", str(db), str(dataset_path),
                     "--overwrite"]) == 0

    def test_empty_store_listing(self, tmp_path, capsys):
        assert main(["store", str(tmp_path / "empty.db")]) == 0
        assert "empty" in capsys.readouterr().out


class TestProfile:
    def test_prints_breakdown(self, dataset_path, capsys):
        assert main(["profile", str(dataset_path)]) == 0
        out = capsys.readouterr().out
        assert "# profile:" in out
        assert "stage breakdown" in out
        assert "iteration(s)" in out
        assert "residual trajectory:" in out

    @pytest.mark.parametrize("method", ["power", "gauss_seidel", "levels"])
    def test_solver_choice(self, dataset_path, method, capsys):
        assert main(["profile", str(dataset_path),
                     "--method", method]) == 0
        assert f"solver={method}" in capsys.readouterr().out

    def test_json_report(self, dataset_path, tmp_path, capsys):
        import json

        from repro.obs import REPORT_FORMAT_VERSION

        out_path = tmp_path / "profile.json"
        assert main(["profile", str(dataset_path), "--method", "levels",
                     "--json", str(out_path)]) == 0
        report = json.loads(out_path.read_text())
        assert report["format_version"] == REPORT_FORMAT_VERSION
        assert report["telemetry"]["solver"] == "levels"
        assert report["telemetry"]["iterations"] >= 1
        assert report["metrics"]["num_articles"] == 500
        assert "timings" in report

    def test_failed_run_still_writes_report(self, tmp_path, capsys):
        import json

        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        out_path = tmp_path / "failed.json"
        assert main(["profile", str(empty),
                     "--json", str(out_path)]) == 1
        err = capsys.readouterr().err
        assert "error:" in err
        assert "run failed" in err
        report = json.loads(out_path.read_text())
        assert report["metrics"]["status"] == "failed"
        assert "empty" in report["metrics"]["error"]

    def test_failed_run_without_json_writes_nothing(self, tmp_path,
                                                    capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["profile", str(empty)]) == 1
        assert "error:" in capsys.readouterr().err
        assert list(tmp_path.glob("*.json")) == []


@pytest.mark.obs
class TestTrace:
    def test_model_trace_renders_span_tree(self, dataset_path, capsys):
        assert main(["trace", str(dataset_path)]) == 0
        out = capsys.readouterr().out
        assert "# trace:" in out
        assert "* rank" in out
        assert "critical path" in out
        assert "twpr.solve" in out

    def test_parallel_trace_with_crash(self, dataset_path, tmp_path,
                                       capsys):
        import json

        report_path = tmp_path / "trace.json"
        assert main(["trace", str(dataset_path), "--engine", "parallel",
                     "--workers", "2", "--crash", "1:2",
                     "--json", str(report_path)]) == 0
        out = capsys.readouterr().out
        assert "parallel.run" in out
        assert "worker.solve" in out
        assert "recovery.respawn" in out
        report = json.loads(report_path.read_text())
        names = {span["name"] for span in report["spans"]}
        assert {"parallel.run", "superstep", "worker.solve"} <= names
        assert len({span["trace_id"] for span in report["spans"]}) == 1

    def test_bad_crash_spec_errors(self, dataset_path, capsys):
        assert main(["trace", str(dataset_path), "--engine", "parallel",
                     "--crash", "nope"]) == 1
        assert "WORKER:SUPERSTEP" in capsys.readouterr().err


@pytest.mark.obs
class TestMetrics:
    def test_prometheus_to_stdout(self, dataset_path, capsys):
        assert main(["metrics", str(dataset_path)]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_stage_seconds histogram" in out
        assert 'repro_stage_seconds_bucket{stage="build_graph",le="+Inf"}' \
            in out
        assert "repro_stage_seconds_count" in out

    def test_json_to_file(self, dataset_path, tmp_path, capsys):
        import json

        out_path = tmp_path / "metrics.json"
        assert main(["metrics", str(dataset_path), "--format", "json",
                     "--output", str(out_path)]) == 0
        assert "wrote" in capsys.readouterr().out
        snapshot = json.loads(out_path.read_text())
        assert snapshot["repro_stage_seconds"]["kind"] == "histogram"


class TestResume:
    @pytest.fixture()
    def checkpoint_root(self, tmp_path):
        from repro.data.generator import GeneratorConfig, generate_dataset
        from repro.engine.live import LiveRanker
        from repro.engine.updates import yearly_updates

        dataset = generate_dataset(GeneratorConfig(num_articles=300,
                                                   seed=7))
        base, batches = yearly_updates(dataset, from_year=2008)
        root = tmp_path / "ckpt"
        live = LiveRanker(base, checkpoint_dir=root, checkpoint_every=1,
                          checkpoint_keep=3)
        for batch in batches[:3]:
            live.apply(batch)
        return root

    def test_reports_health_and_top(self, checkpoint_root, capsys):
        assert main(["resume", str(checkpoint_root), "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "ckpt-00000003: ok" in out
        assert "resumed from ckpt-00000003" in out
        assert "sha256" in out
        assert "# top 3 of" in out
        ranked = [line for line in out.splitlines()
                  if line.lstrip()[:1].isdigit() and "." in line]
        assert len(ranked) == 3

    def test_flags_corrupt_rotation_and_falls_back(self,
                                                   checkpoint_root,
                                                   capsys):
        newest = checkpoint_root / "ckpt-00000003"
        with open(newest / "state.npz", "r+b") as handle:
            handle.truncate(16)
        assert main(["resume", str(checkpoint_root)]) == 0
        out = capsys.readouterr().out
        assert "ckpt-00000003: CORRUPT" in out
        assert "resumed from ckpt-00000002" in out

    def test_synthetic_batches_continue_the_session(self,
                                                    checkpoint_root,
                                                    capsys):
        assert main(["resume", str(checkpoint_root), "--batches", "2",
                     "--batch-size", "5", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "applied batch 4" in out
        assert "applied batch 5" in out
        # Auto-checkpointing resumed too (checkpoint_every was 1).
        assert (checkpoint_root / "ckpt-00000005").is_dir()

    def test_missing_checkpoint_errors(self, tmp_path, capsys):
        assert main(["resume", str(tmp_path / "nope")]) == 1
        assert "error:" in capsys.readouterr().err
