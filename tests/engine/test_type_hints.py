"""Regression: deferred annotations must resolve for every public API.

``typing.get_type_hints`` evaluates string annotations against the
defining module's namespace. A missing typing import (``Dict`` in
``repro.engine.blocks`` once) passes every functional test and only
blows up when a runtime type-inspection tool — dataclasses docs,
IDEs, pydantic-style validators — touches the API. This test walks
every public callable in the engine (and neighbouring solver) modules
and forces the evaluation.
"""

import importlib
import inspect
import typing

import pytest

from repro.obs import Observability
from repro.obs.telemetry import SolverTelemetry

#: Names deliberately imported only under ``TYPE_CHECKING`` (genuine
#: import cycles through ``repro/__init__``). Supplying them here keeps
#: the regression sharp: everything else — ``Dict``, ``Optional``,
#: helper classes — must resolve from the module's own globals.
CYCLE_GUARDED = {
    "SolverTelemetry": SolverTelemetry,
    "Observability": Observability,
}

MODULES = [
    "repro.engine.blocks",
    "repro.engine.parallel",
    "repro.engine.shm",
    "repro.engine.incremental",
    "repro.engine.live",
    "repro.ranking.pagerank",
    "repro.ranking.gauss_seidel",
    "repro.graph.toposort",
]


def _public_callables(module):
    for name in dir(module):
        if name.startswith("_"):
            continue
        obj = getattr(module, name)
        if getattr(obj, "__module__", None) != module.__name__:
            continue
        if inspect.isfunction(obj):
            yield f"{name}", obj
        elif inspect.isclass(obj):
            yield name, obj
            for method_name, method in vars(obj).items():
                if method_name.startswith("_") and \
                        method_name != "__init__":
                    continue
                if inspect.isfunction(method):
                    yield f"{name}.{method_name}", method


@pytest.mark.parametrize("module_name", MODULES)
def test_annotations_resolve(module_name):
    module = importlib.import_module(module_name)
    resolved = 0
    for name, obj in _public_callables(module):
        # Raises NameError when an annotation references a name the
        # module never imported — the bug class under regression.
        typing.get_type_hints(obj, localns=CYCLE_GUARDED)
        resolved += 1
    assert resolved > 0
