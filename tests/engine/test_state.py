"""Engine checkpoint save/load tests."""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.core.time_weight import linear_decay
from repro.engine.incremental import IncrementalEngine
from repro.engine.state import load_engine, save_engine
from repro.engine.updates import fraction_update


@pytest.fixture(scope="module")
def engine(small_dataset):
    base, batch = fraction_update(small_dataset, 0.05)
    engine = IncrementalEngine(base, delta_threshold=1e-3)
    engine.apply(batch)
    return engine


class TestRoundTrip:
    def test_scores_and_graph_preserved(self, engine, tmp_path):
        save_engine(engine, tmp_path / "ckpt")
        loaded = load_engine(tmp_path / "ckpt")
        assert np.allclose(loaded.scores, engine.scores)
        assert loaded.graph.num_nodes == engine.graph.num_nodes
        assert loaded.graph.num_edges == engine.graph.num_edges
        assert loaded.dataset.num_articles == engine.dataset.num_articles
        assert loaded.damping == engine.damping
        assert loaded.delta_threshold == engine.delta_threshold

    def test_loaded_engine_continues(self, small_dataset, tmp_path):
        base, batch = fraction_update(small_dataset, 0.10)
        half = fraction_update(base, 0.05)
        bootstrap, first_batch = half
        engine = IncrementalEngine(bootstrap, delta_threshold=1e-3)
        engine.apply(first_batch)
        save_engine(engine, tmp_path / "ckpt")

        loaded = load_engine(tmp_path / "ckpt")
        report = loaded.apply(batch)
        assert report.converged
        assert loaded.dataset.num_articles == small_dataset.num_articles
        # Continuing from the checkpoint matches continuing in-process.
        engine.apply(batch)
        assert np.allclose(loaded.scores, engine.scores)

    def test_no_initial_resolve_on_load(self, engine, tmp_path,
                                        monkeypatch):
        save_engine(engine, tmp_path / "ckpt")
        import repro.engine.incremental as incremental_module

        def boom(*args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("load must not re-solve")

        monkeypatch.setattr(incremental_module,
                            "time_weighted_pagerank", boom)
        loaded = load_engine(tmp_path / "ckpt")
        assert len(loaded.scores) == engine.graph.num_nodes


class TestErrors:
    def test_missing_checkpoint(self, tmp_path):
        with pytest.raises(StorageError, match="no engine checkpoint"):
            load_engine(tmp_path / "nowhere")

    def test_custom_kernel_rejected(self, small_dataset, tmp_path):
        base, _ = fraction_update(small_dataset, 0.05)
        engine = IncrementalEngine(base, decay=linear_decay(20.0))
        save_engine(engine, tmp_path / "ckpt")
        with pytest.raises(StorageError, match="non-exponential"):
            load_engine(tmp_path / "ckpt")

    def test_bad_version(self, engine, tmp_path):
        save_engine(engine, tmp_path / "ckpt")
        config = (tmp_path / "ckpt" / "engine.json")
        config.write_text(config.read_text().replace(
            '"format_version": 2', '"format_version": 99'))
        with pytest.raises(StorageError, match="unsupported"):
            load_engine(tmp_path / "ckpt")
