"""Citation-insertion (edge) update tests."""

import pytest

from repro.errors import DatasetError
from repro.engine.incremental import IncrementalEngine
from repro.engine.updates import UpdateBatch, apply_update, \
    fraction_update
from repro.data.schema import Article


class TestApplyCitationUpdate:
    def test_adds_reference(self, tiny_dataset):
        batch = UpdateBatch(articles=(), citations=((3, 0),))
        updated = apply_update(tiny_dataset, batch)
        assert 0 in updated.articles[3].references
        assert 0 not in tiny_dataset.articles[3].references  # untouched

    def test_duplicate_citation_noop(self, tiny_dataset):
        batch = UpdateBatch(articles=(), citations=((1, 0),))
        updated = apply_update(tiny_dataset, batch)
        assert updated.articles[1].references == \
            tiny_dataset.articles[1].references

    def test_unknown_endpoints_rejected(self, tiny_dataset):
        with pytest.raises(DatasetError, match="unknown article"):
            apply_update(tiny_dataset,
                         UpdateBatch(articles=(), citations=((99, 0),)))
        with pytest.raises(DatasetError, match="unknown article"):
            apply_update(tiny_dataset,
                         UpdateBatch(articles=(), citations=((0, 99),)))

    def test_self_citation_rejected(self, tiny_dataset):
        with pytest.raises(DatasetError, match="self-citation"):
            apply_update(tiny_dataset,
                         UpdateBatch(articles=(), citations=((1, 1),)))

    def test_citation_to_new_article_in_same_batch(self, tiny_dataset):
        batch = UpdateBatch(
            articles=(Article(id=10, title="n", year=2012),),
            citations=((10, 0),))
        updated = apply_update(tiny_dataset, batch)
        assert updated.articles[10].references == (0,)

    def test_counts_include_citations(self):
        batch = UpdateBatch(articles=(), citations=((1, 2), (3, 4)))
        assert batch.num_citations == 2


class TestIncrementalEdgeUpdates:
    @pytest.fixture()
    def engine(self, medium_dataset):
        base, _ = fraction_update(medium_dataset, 0.02)
        return IncrementalEngine(base, delta_threshold=1e-4), base

    def test_edge_only_update_tracked(self, engine):
        eng, base = engine
        ids = sorted(base.articles)
        pairs = tuple((ids[-(k + 1)], ids[k]) for k in range(20)
                      if ids[k] not in
                      base.articles[ids[-(k + 1)]].references)
        report = eng.apply(UpdateBatch(articles=(), citations=pairs))
        assert report.converged
        assert report.affected.fraction > 0
        assert eng.error_vs_exact() < 1e-3

    def test_graph_gains_edges(self, engine):
        eng, base = engine
        before = eng.graph.num_edges
        ids = sorted(base.articles)
        citing, cited = ids[-1], ids[0]
        assert cited not in base.articles[citing].references
        eng.apply(UpdateBatch(articles=(), citations=((citing, cited),)))
        assert eng.graph.num_edges == before + 1

    def test_mixed_update(self, engine):
        eng, base = engine
        ids = sorted(base.articles)
        new_id = ids[-1] + 1
        _, max_year = base.year_range()
        batch = UpdateBatch(
            articles=(Article(id=new_id, title="mix", year=max_year + 1,
                              references=(ids[0],)),),
            citations=((ids[-1], ids[1]),))
        report = eng.apply(batch)
        assert report.converged
        assert eng.dataset.num_articles == base.num_articles + 1
        assert eng.error_vs_exact() < 1e-3

    def test_changed_source_in_seeds(self, engine):
        eng, base = engine
        ids = sorted(base.articles)
        citing, cited = ids[-1], ids[0]
        report = eng.apply(
            UpdateBatch(articles=(), citations=((citing, cited),)))
        citing_index = eng.graph.index_of(citing)
        assert citing_index in report.affected.seeds.tolist()
