"""Incremental engine tests: affected area and approximation quality."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.core.twpr import time_weighted_pagerank
from repro.engine.incremental import IncrementalEngine
from repro.engine.updates import fraction_update, yearly_updates


@pytest.fixture(scope="module")
def split(medium_dataset):
    return fraction_update(medium_dataset, 0.03)


class TestInitialization:
    def test_initial_scores_exact(self, split):
        base, _ = split
        engine = IncrementalEngine(base)
        graph = base.citation_csr()
        years = base.article_years(graph)
        exact = time_weighted_pagerank(graph, years).scores
        assert np.abs(engine.scores - exact).sum() < 1e-9

    def test_validation(self, split):
        base, _ = split
        with pytest.raises(ConfigError):
            IncrementalEngine(base, damping=1.0)
        with pytest.raises(ConfigError):
            IncrementalEngine(base, delta_threshold=0)
        with pytest.raises(ConfigError):
            IncrementalEngine(base, tol=0)


class TestApply:
    def test_small_error_vs_exact(self, split):
        base, batch = split
        engine = IncrementalEngine(base, delta_threshold=1e-3)
        report = engine.apply(batch)
        assert report.converged
        assert 0 < report.affected.fraction <= 1.0
        assert engine.error_vs_exact() < 1e-3

    def test_affected_area_contains_new_nodes(self, split):
        base, batch = split
        engine = IncrementalEngine(base, delta_threshold=1e-3)
        report = engine.apply(batch)
        new_ids = {a.id for a in batch.articles}
        affected_ids = {int(engine.graph.node_ids[i])
                        for i in report.affected.nodes}
        assert new_ids <= affected_ids

    def test_smaller_threshold_grows_area_shrinks_error(self, split):
        base, batch = split
        results = {}
        for threshold in (1e-1, 1e-4):
            engine = IncrementalEngine(base, delta_threshold=threshold)
            report = engine.apply(batch)
            results[threshold] = (report.affected.fraction,
                                  engine.error_vs_exact())
        loose_fraction, loose_error = results[1e-1]
        tight_fraction, tight_error = results[1e-4]
        assert tight_fraction >= loose_fraction
        assert tight_error <= loose_error + 1e-12

    def test_scores_stay_distribution(self, split):
        base, batch = split
        engine = IncrementalEngine(base)
        engine.apply(batch)
        assert engine.scores.sum() == pytest.approx(1.0)
        assert (engine.scores >= 0).all()

    def test_report_counts(self, split):
        base, batch = split
        engine = IncrementalEngine(base)
        report = engine.apply(batch)
        assert report.num_nodes == base.num_articles + batch.num_articles
        assert report.seconds > 0
        assert report.iterations >= 1

    def test_scores_by_id_covers_all(self, split):
        base, batch = split
        engine = IncrementalEngine(base)
        engine.apply(batch)
        scores = engine.scores_by_id()
        assert len(scores) == base.num_articles + batch.num_articles


class TestStream:
    def test_yearly_stream_stays_accurate(self, small_dataset):
        _, max_year = small_dataset.year_range()
        base, batches = yearly_updates(small_dataset, max_year - 2)
        engine = IncrementalEngine(base, delta_threshold=1e-4)
        for batch in batches:
            report = engine.apply(batch)
            assert report.converged
        assert engine.dataset.num_articles == small_dataset.num_articles
        # Accumulated drift over the stream stays bounded.
        assert engine.error_vs_exact() < 1e-2

    def test_empty_like_batch_rejected_gracefully(self, small_dataset):
        # A batch with zero articles is a no-op but must not corrupt state.
        from repro.engine.updates import UpdateBatch
        _, max_year = small_dataset.year_range()
        base, _ = yearly_updates(small_dataset, max_year)
        engine = IncrementalEngine(base)
        before = engine.scores.copy()
        report = engine.apply(UpdateBatch(articles=()))
        assert report.num_nodes == base.num_articles
        assert np.abs(engine.scores - before).sum() < 1e-9


class TestStructureCache:
    def test_empty_batches_reuse_cached_structure(self, small_dataset):
        from repro.engine.updates import UpdateBatch
        _, max_year = small_dataset.year_range()
        base, _ = yearly_updates(small_dataset, max_year)
        engine = IncrementalEngine(base)
        engine.apply(UpdateBatch(articles=()))
        cached = engine._structure_cache
        assert cached is not None
        # A second no-op batch hands the same graph/weights back in and
        # must hit the cache instead of re-deriving the arrays.
        engine.apply(UpdateBatch(articles=()))
        assert engine._structure_cache is cached

    def test_real_batch_invalidates_and_stays_correct(self, split):
        base, batch = split
        engine = IncrementalEngine(base)
        from repro.engine.updates import UpdateBatch
        engine.apply(UpdateBatch(articles=()))
        stale = engine._structure_cache
        engine.apply(batch)
        fresh = engine._structure_cache
        assert fresh is not stale
        assert fresh[0] is engine.graph
        assert fresh[1] is engine._edge_weights
        # Cached strengths describe the *current* graph.
        assert len(fresh[4]) == engine.graph.num_nodes
        # And the cache never changes the math: an engine applying the
        # same batch sequence with the cache dropped before every apply
        # lands on bit-identical scores.
        baseline = IncrementalEngine(base)
        baseline.apply(UpdateBatch(articles=()))
        baseline._structure_cache = None
        baseline.apply(batch)
        assert np.array_equal(engine.scores, baseline.scores)


class TestTelemetry:
    def test_batch_records_and_identical_scores(self, split):
        from repro.obs import SolverTelemetry

        base, batch = split
        plain = IncrementalEngine(base)
        plain_report = plain.apply(batch)

        telemetry = SolverTelemetry("incremental")
        observed = IncrementalEngine(base, telemetry=telemetry)
        report = observed.apply(batch)

        assert np.array_equal(plain.scores, observed.scores)
        assert len(telemetry.batches) == 1
        record = telemetry.batches[0]
        assert record.index == 0
        assert record.affected_nodes == len(report.affected.nodes)
        assert record.affected_nodes == len(plain_report.affected.nodes)
        assert 0 < record.affected_fraction <= 1
        assert record.seconds >= 0
        assert record.num_nodes == observed.graph.num_nodes

    def test_batches_accumulate_across_applies(self, small_dataset):
        from repro.obs import SolverTelemetry

        telemetry = SolverTelemetry()
        base, batches = yearly_updates(small_dataset, from_year=2010)
        engine = IncrementalEngine(base, telemetry=telemetry)
        for batch in batches:
            engine.apply(batch)
        assert [r.index for r in telemetry.batches] == \
            list(range(len(batches)))
