"""Checkpoint corruption detection (torn writes, bit rot, tampering)."""

import json

import numpy as np
import pytest

from repro.errors import StorageError
from repro.engine.incremental import IncrementalEngine
from repro.engine.state import load_engine, save_engine, verify_checkpoint
from repro.engine.updates import fraction_update
from repro.resilience import FaultPlan, InjectedCrash


@pytest.fixture(scope="module")
def engine(small_dataset):
    base, batch = fraction_update(small_dataset, 0.05)
    engine = IncrementalEngine(base, delta_threshold=1e-3)
    engine.apply(batch)
    return engine


@pytest.fixture()
def checkpoint(engine, tmp_path):
    directory = tmp_path / "ckpt"
    save_engine(engine, directory)
    return directory


class TestVerifyCheckpoint:
    def test_healthy_checkpoint_has_no_problems(self, checkpoint):
        assert verify_checkpoint(checkpoint) == []

    def test_nonexistent_directory(self, tmp_path):
        problems = verify_checkpoint(tmp_path / "nope")
        assert len(problems) == 1
        assert "not a checkpoint directory" in problems[0]

    def test_unreadable_manifest(self, checkpoint):
        (checkpoint / "MANIFEST.json").write_text("{not json",
                                                  encoding="utf-8")
        [problem] = verify_checkpoint(checkpoint)
        assert "unreadable manifest" in problem


class TestTruncation:
    def test_truncated_arrays_detected_on_load(self, checkpoint):
        path = checkpoint / "state.npz"
        with open(path, "r+b") as handle:
            handle.truncate(64)
        assert any("truncated" in p for p in verify_checkpoint(checkpoint))
        with pytest.raises(StorageError, match="earlier rotation"):
            load_engine(checkpoint)

    def test_truncated_dataset_detected_on_load(self, checkpoint):
        path = checkpoint / "dataset.jsonl.gz"
        with open(path, "r+b") as handle:
            handle.truncate(10)
        with pytest.raises(StorageError, match="integrity verification"):
            load_engine(checkpoint)

    def test_injected_truncation_fault(self, engine, tmp_path):
        # The fault plan tears the file *after* the manifest seals the
        # intact content — exactly the torn-page case checksums catch.
        plan = FaultPlan().truncate_file("state.npz", keep_bytes=64)
        directory = tmp_path / "ckpt"
        save_engine(engine, directory, fault_plan=plan)
        assert (directory / "state.npz").stat().st_size == 64
        with pytest.raises(StorageError, match="truncated|torn"):
            load_engine(directory)


class TestMissingAndTampered:
    def test_missing_config_is_a_clear_error(self, checkpoint):
        (checkpoint / "engine.json").unlink()
        with pytest.raises(StorageError, match="no engine checkpoint"):
            load_engine(checkpoint)

    def test_missing_arrays_reported_by_name(self, checkpoint):
        (checkpoint / "state.npz").unlink()
        assert any("missing state.npz" in p
                   for p in verify_checkpoint(checkpoint))
        with pytest.raises(StorageError, match="state.npz"):
            load_engine(checkpoint)

    def test_bit_flip_same_size_caught_by_checksum(self, checkpoint):
        # Same byte count, different content: only the SHA-256 sees it.
        path = checkpoint / "state.npz"
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        assert any("checksum mismatch" in p
                   for p in verify_checkpoint(checkpoint))
        with pytest.raises(StorageError, match="checksum mismatch"):
            load_engine(checkpoint)


class TestCrashMidSave:
    @pytest.mark.faults
    @pytest.mark.parametrize("files_before_crash", [1, 2, 3])
    def test_crash_between_writes_preserves_old_checkpoint(
            self, engine, tmp_path, files_before_crash):
        directory = tmp_path / "ckpt"
        save_engine(engine, directory)
        reference = load_engine(directory).scores
        # Second save dies partway through its staging writes; the
        # published checkpoint must still be the complete first one.
        plan = FaultPlan().crash_after_files(files_before_crash)
        with pytest.raises(InjectedCrash):
            save_engine(engine, directory, fault_plan=plan)
        assert verify_checkpoint(directory) == []
        assert np.array_equal(load_engine(directory).scores, reference)

    @pytest.mark.faults
    def test_crash_before_any_publish_leaves_no_checkpoint(
            self, engine, tmp_path):
        directory = tmp_path / "ckpt"
        plan = FaultPlan().crash_after_files(1)
        with pytest.raises(InjectedCrash):
            save_engine(engine, directory, fault_plan=plan)
        assert not directory.exists()
        with pytest.raises(StorageError, match="no engine checkpoint"):
            load_engine(directory)

    def test_stale_staging_directory_is_replaced(self, engine, tmp_path):
        # Leftover staging from a crashed save must not poison a retry.
        directory = tmp_path / "ckpt"
        staging = tmp_path / ".ckpt.tmp"
        staging.mkdir()
        (staging / "junk").write_text("stale", encoding="utf-8")
        save_engine(engine, directory)
        assert not staging.exists()
        assert verify_checkpoint(directory) == []


class TestLegacyV1:
    def test_v1_checkpoint_loads_without_manifest(self, engine,
                                                  tmp_path):
        directory = tmp_path / "ckpt"
        save_engine(engine, directory)
        reference = load_engine(directory).scores
        # Rewrite as a v1 checkpoint: no manifest, old version stamp.
        (directory / "MANIFEST.json").unlink()
        config_path = directory / "engine.json"
        config = json.loads(config_path.read_text(encoding="utf-8"))
        config["format_version"] = 1
        config_path.write_text(json.dumps(config), encoding="utf-8")
        assert verify_checkpoint(directory) == []
        assert np.array_equal(load_engine(directory).scores, reference)

    def test_v1_missing_files_still_reported(self, engine, tmp_path):
        directory = tmp_path / "ckpt"
        save_engine(engine, directory)
        (directory / "MANIFEST.json").unlink()
        (directory / "state.npz").unlink()
        assert any("no manifest" in p
                   for p in verify_checkpoint(directory))


def test_save_is_idempotent_over_existing(engine, tmp_path):
    directory = tmp_path / "ckpt"
    save_engine(engine, directory)
    first = load_engine(directory).scores
    save_engine(engine, directory)  # exercises the park-and-swap path
    assert verify_checkpoint(directory) == []
    assert np.array_equal(load_engine(directory).scores, first)
    assert not (tmp_path / ".ckpt.old").exists()
    assert not (tmp_path / ".ckpt.tmp").exists()
