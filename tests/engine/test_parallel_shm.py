"""Zero-copy shared-memory data plane: parity, bytes, lifecycle.

The acceptance bar for the shared-memory engine is threefold: scores
stay bit-identical to the pickle plane and to the serial engine (with
and without injected faults), per-superstep IPC drops to the
control-message floor (no array bytes), and no shared-memory segment
survives a run — clean, crashed, or aborted.
"""

import glob

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.obs import SolverTelemetry
from repro.engine.blocks import BlockEngine
from repro.engine.parallel import ParallelBlockEngine
from repro.engine.shm import (SHARED_MEMORY_AVAILABLE, attach_arrays,
                              destroy_segment, pack_arrays)
from repro.graph.partition import range_partition
from repro.resilience import Deadline, FaultPlan, RetryPolicy

pytestmark = pytest.mark.skipif(
    not SHARED_MEMORY_AVAILABLE,
    reason="multiprocessing.shared_memory unavailable")

FAST_RETRIES = RetryPolicy(max_retries=2, base_delay=0.01,
                           max_delay=0.02, jitter=0.0)


def _leftover_segments():
    return glob.glob("/dev/shm/repro-*")


@pytest.fixture(scope="module")
def graph_and_partition(small_dataset):
    graph = small_dataset.citation_csr()
    return graph, range_partition(graph, 4)


class TestSegments:
    def test_pack_attach_roundtrip(self):
        arrays = {"a": np.arange(7, dtype=np.float64),
                  "b": np.arange(6, dtype=np.int32).reshape(2, 3)}
        segment, layout = pack_arrays(arrays, prefix="repro-test")
        try:
            attached, views = attach_arrays(layout)
            try:
                for name, original in arrays.items():
                    assert np.array_equal(views[name], original)
                    assert views[name].dtype == original.dtype
            finally:
                views = None
                attached.close()
        finally:
            destroy_segment(segment)
        assert segment.name not in _leftover_segments()


class TestParity:
    def test_shm_matches_pickle_plane(self, graph_and_partition):
        graph, partition = graph_and_partition
        shm = ParallelBlockEngine(graph, partition, num_workers=2,
                                  shared_memory=True)
        pickle_plane = ParallelBlockEngine(graph, partition,
                                           num_workers=2,
                                           shared_memory=False)
        a = shm.run(tol=1e-10)
        b = pickle_plane.run(tol=1e-10)
        assert shm.last_used_shared_memory
        assert not pickle_plane.last_used_shared_memory
        assert a.converged and b.converged
        assert np.array_equal(a.scores, b.scores)
        assert a.supersteps == b.supersteps

    def test_single_worker_matches_serial_engine(
            self, graph_and_partition):
        graph, partition = graph_and_partition
        parallel = ParallelBlockEngine(graph, partition, num_workers=1,
                                       shared_memory=True).run(tol=1e-10)
        serial = BlockEngine(graph, partition).run(tol=1e-10)
        assert np.array_equal(parallel.scores, serial.scores)

    def test_crash_recovery_stays_bit_identical(
            self, graph_and_partition):
        graph, partition = graph_and_partition
        baseline = ParallelBlockEngine(graph, partition, num_workers=2,
                                       shared_memory=True).run(tol=1e-10)
        plan = FaultPlan().crash_worker(0, superstep=2)
        telemetry = SolverTelemetry("parallel")
        faulted = ParallelBlockEngine(
            graph, partition, num_workers=2, shared_memory=True,
            retry_policy=FAST_RETRIES, fault_plan=plan)
        result = faulted.run(tol=1e-10, telemetry=telemetry)
        assert result.converged
        assert np.array_equal(result.scores, baseline.scores)
        assert telemetry.counters["resilience.crashes"] == 1
        assert telemetry.counters["resilience.respawns"] == 1
        # The respawned worker re-attached the segments.
        assert telemetry.counters["ipc.attach"] == 3
        assert not _leftover_segments()

    def test_timeout_poisons_slot_and_stays_bit_identical(
            self, graph_and_partition):
        graph, partition = graph_and_partition
        baseline = ParallelBlockEngine(graph, partition, num_workers=2,
                                       shared_memory=True).run(tol=1e-10)
        plan = FaultPlan().delay_task(0, superstep=2, seconds=1.5)
        telemetry = SolverTelemetry("parallel")
        faulted = ParallelBlockEngine(
            graph, partition, num_workers=2, shared_memory=True,
            retry_policy=FAST_RETRIES, deadline=Deadline(0.25),
            fault_plan=plan)
        result = faulted.run(tol=1e-10, telemetry=telemetry)
        assert result.converged
        assert np.array_equal(result.scores, baseline.scores)
        assert telemetry.counters["resilience.timeouts"] >= 1
        # After a timeout the zombie may still be alive: its slot must
        # never write through shared memory again.
        assert telemetry.counters["ipc.poisoned"] == 1
        assert not _leftover_segments()


class TestBytes:
    def test_superstep_payloads_drop_to_control_floor(
            self, graph_and_partition):
        graph, partition = graph_and_partition
        shm_telemetry = SolverTelemetry("parallel")
        pickle_telemetry = SolverTelemetry("parallel")
        shm = ParallelBlockEngine(graph, partition, num_workers=2,
                                  shared_memory=True)
        shm.run(tol=1e-10, telemetry=shm_telemetry)
        pickle_plane = ParallelBlockEngine(graph, partition,
                                           num_workers=2,
                                           shared_memory=False)
        pickle_plane.run(tol=1e-10, telemetry=pickle_telemetry)
        # The pickle plane ships the score vector to every worker every
        # superstep; the shm plane ships only control tuples.
        assert shm_telemetry.bytes_shipped < \
            pickle_telemetry.bytes_shipped / 10
        dispatches = (shm_telemetry.num_supersteps * 2
                      + 2)  # + the two init manifests
        assert shm_telemetry.bytes_shipped < dispatches * 1024
        # The arrays went through segments instead, and telemetry says
        # how many bytes live there.
        n = graph.num_nodes
        assert shm_telemetry.counters["ipc.shm_bytes"] >= 3 * n * 8


class TestLifecycle:
    def test_segments_unlinked_after_clean_run(self,
                                               graph_and_partition):
        graph, partition = graph_and_partition
        engine = ParallelBlockEngine(graph, partition, num_workers=2,
                                     shared_memory=True)
        engine.run(tol=1e-10)
        assert engine.last_shm_segments  # names were recorded...
        for name in engine.last_shm_segments:  # ...and all are gone
            assert not glob.glob(f"/dev/shm/{name}")

    def test_segments_unlinked_after_aborted_run(
            self, graph_and_partition, monkeypatch):
        graph, partition = graph_and_partition
        engine = ParallelBlockEngine(graph, partition, num_workers=2,
                                     shared_memory=True)

        def explode(*args, **kwargs):
            raise RuntimeError("injected coordinator failure")

        monkeypatch.setattr(engine, "_collect_with_recovery", explode)
        with pytest.raises(RuntimeError, match="injected"):
            engine.run(tol=1e-10)
        assert engine.last_shm_segments
        for name in engine.last_shm_segments:
            assert not glob.glob(f"/dev/shm/{name}")

    def test_invalid_flag_rejected(self, graph_and_partition):
        graph, partition = graph_and_partition
        with pytest.raises(ConfigError):
            ParallelBlockEngine(graph, partition,
                                shared_memory="always")
