"""Parallel block-engine tests (spawn real worker processes, kept small)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.engine.parallel import ParallelBlockEngine
from repro.graph.partition import range_partition
from repro.ranking.pagerank import pagerank


class TestParallelBlockEngine:
    def test_two_workers_match_reference(self, small_dataset):
        graph = small_dataset.citation_csr()
        reference = pagerank(graph, tol=1e-12, max_iter=500)
        partition = range_partition(graph, 4)
        engine = ParallelBlockEngine(graph, partition, num_workers=2)
        result = engine.run(tol=1e-12)
        assert result.converged
        assert np.abs(result.scores - reference.scores).sum() < 1e-8

    def test_single_worker_matches_reference(self, small_dataset):
        graph = small_dataset.citation_csr()
        reference = pagerank(graph, tol=1e-12, max_iter=500)
        partition = range_partition(graph, 2)
        result = ParallelBlockEngine(graph, partition,
                                     num_workers=1).run(tol=1e-12)
        assert np.abs(result.scores - reference.scores).sum() < 1e-8

    def test_validation(self, small_dataset):
        graph = small_dataset.citation_csr()
        partition = range_partition(graph, 2)
        with pytest.raises(ConfigError):
            ParallelBlockEngine(graph, partition, num_workers=0)
        with pytest.raises(ConfigError):
            ParallelBlockEngine(graph, partition, damping=1.0)
        engine = ParallelBlockEngine(graph, partition, num_workers=1)
        with pytest.raises(ConfigError):
            engine.run(tol=0)


class TestPayloadDiscipline:
    """Regression: every worker used to receive the whole block payload."""

    def test_workers_only_get_their_blocks(self, small_dataset):
        graph = small_dataset.citation_csr()
        partition = range_partition(graph, 4)
        engine = ParallelBlockEngine(graph, partition, num_workers=2)
        assert len(engine._worker_payloads) == 2
        seen = []
        for worker, payload in enumerate(engine._worker_payloads):
            assert sorted(payload) == \
                sorted(engine._assignment_to_worker[worker])
            seen.extend(payload)
        # Together the payloads cover every block exactly once.
        assert sorted(seen) == list(range(partition.num_blocks))

    def test_payload_sizes_shrink_per_worker(self, small_dataset):
        """Two workers each carry roughly half the single-worker payload."""
        import pickle

        graph = small_dataset.citation_csr()
        partition = range_partition(graph, 4)
        one = ParallelBlockEngine(graph, partition, num_workers=1)
        two = ParallelBlockEngine(graph, partition, num_workers=2)
        size_one = len(pickle.dumps(one._worker_payloads[0]))
        largest_of_two = max(len(pickle.dumps(p))
                             for p in two._worker_payloads)
        assert largest_of_two < size_one


class TestParallelCompaction:
    """Frontier compaction: bit-exact across planes, less work done."""

    def _chain_graph(self):
        from repro.graph.csr import CSRGraph

        # Self-contained chains (blocks 0-3) settle in one superstep;
        # a long cross-block cycle (blocks 4-7) keeps iterating.
        edges = [(i, i + 1) for i in range(20) if (i + 1) % 5 != 0]
        edges += [(i, 20 + (i - 19) % 20) for i in range(20, 40)]
        return CSRGraph.from_edges(edges, nodes=range(40))

    @pytest.mark.parametrize("plane", [False, "auto"])
    def test_bit_identical_with_and_without(self, plane):
        graph = self._chain_graph()
        partition = range_partition(graph, 8)
        engine = ParallelBlockEngine(graph, partition, num_workers=3,
                                     shared_memory=plane)
        on = engine.run(tol=1e-13, local_tol=1e-14, compaction=True)
        off = engine.run(tol=1e-13, local_tol=1e-14, compaction=False)
        assert np.array_equal(on.scores, off.scores)
        assert on.supersteps == off.supersteps
        assert on.residual == off.residual
        assert off.blocks_skipped == 0
        assert on.blocks_skipped > 0
        assert on.local_iterations < off.local_iterations

    def test_planes_agree_under_compaction(self):
        graph = self._chain_graph()
        partition = range_partition(graph, 8)
        results = [
            ParallelBlockEngine(graph, partition, num_workers=3,
                                shared_memory=plane).run(
                tol=1e-13, local_tol=1e-14, compaction=True)
            for plane in (False, "auto")
        ]
        assert np.array_equal(results[0].scores, results[1].scores)
        assert results[0].supersteps == results[1].supersteps

    def test_matches_serial_engine(self):
        from repro.engine.blocks import BlockEngine

        graph = self._chain_graph()
        partition = range_partition(graph, 8)
        serial = BlockEngine(graph, partition).run(
            tol=1e-13, local_tol=1e-14, compaction=True)
        parallel = ParallelBlockEngine(graph, partition,
                                       num_workers=1).run(
            tol=1e-13, local_tol=1e-14, compaction=True)
        assert np.array_equal(serial.scores, parallel.scores)

    def test_skips_counted_in_telemetry(self):
        from repro.obs import SolverTelemetry

        graph = self._chain_graph()
        partition = range_partition(graph, 8)
        telemetry = SolverTelemetry("parallel")
        result = ParallelBlockEngine(graph, partition, num_workers=3).run(
            tol=1e-13, local_tol=1e-14, telemetry=telemetry)
        assert result.blocks_skipped > 0
        assert telemetry.counters["blocks_skipped"] == \
            result.blocks_skipped


class TestParallelEdgeWeightGuard:
    @pytest.mark.parametrize("bad", [np.nan, -2.0])
    def test_rejects_bad_weights(self, small_dataset, bad):
        graph = small_dataset.citation_csr()
        partition = range_partition(graph, 2)
        weights = graph.weights.copy()
        weights[0] = bad
        with pytest.raises(ConfigError):
            ParallelBlockEngine(graph, partition, num_workers=1,
                                edge_weights=weights)


class TestParallelTelemetry:
    def test_fixed_point_unchanged_and_bytes_recorded(self, small_dataset):
        from repro.obs import SolverTelemetry

        graph = small_dataset.citation_csr()
        partition = range_partition(graph, 4)
        plain = ParallelBlockEngine(graph, partition,
                                    num_workers=2).run(tol=1e-12)
        telemetry = SolverTelemetry("parallel")
        observed = ParallelBlockEngine(graph, partition, num_workers=2).run(
            tol=1e-12, telemetry=telemetry)
        assert np.array_equal(plain.scores, observed.scores)
        assert observed.supersteps == plain.supersteps

        assert telemetry.num_supersteps == observed.supersteps
        assert telemetry.bytes_shipped > 0
        assert telemetry.total_messages == observed.messages
        assert sum(r.local_iterations for r in telemetry.supersteps) == \
            observed.local_iterations
        # Worker attribution covers every block exactly once.
        owned = sorted(b for blocks in telemetry.worker_blocks.values()
                       for b in blocks)
        assert owned == list(range(partition.num_blocks))
        # Per-superstep block attribution sums to the step's local count.
        for record in telemetry.supersteps:
            assert sum(record.block_iterations.values()) == \
                record.local_iterations
