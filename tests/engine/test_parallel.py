"""Parallel block-engine tests (spawn real worker processes, kept small)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.engine.parallel import ParallelBlockEngine
from repro.graph.partition import range_partition
from repro.ranking.pagerank import pagerank


class TestParallelBlockEngine:
    def test_two_workers_match_reference(self, small_dataset):
        graph = small_dataset.citation_csr()
        reference = pagerank(graph, tol=1e-12, max_iter=500)
        partition = range_partition(graph, 4)
        engine = ParallelBlockEngine(graph, partition, num_workers=2)
        result = engine.run(tol=1e-12)
        assert result.converged
        assert np.abs(result.scores - reference.scores).sum() < 1e-8

    def test_single_worker_matches_reference(self, small_dataset):
        graph = small_dataset.citation_csr()
        reference = pagerank(graph, tol=1e-12, max_iter=500)
        partition = range_partition(graph, 2)
        result = ParallelBlockEngine(graph, partition,
                                     num_workers=1).run(tol=1e-12)
        assert np.abs(result.scores - reference.scores).sum() < 1e-8

    def test_validation(self, small_dataset):
        graph = small_dataset.citation_csr()
        partition = range_partition(graph, 2)
        with pytest.raises(ConfigError):
            ParallelBlockEngine(graph, partition, num_workers=0)
        with pytest.raises(ConfigError):
            ParallelBlockEngine(graph, partition, damping=1.0)
        engine = ParallelBlockEngine(graph, partition, num_workers=1)
        with pytest.raises(ConfigError):
            engine.run(tol=0)
