"""Parallel block-engine tests (spawn real worker processes, kept small)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.engine.parallel import ParallelBlockEngine
from repro.graph.partition import range_partition
from repro.ranking.pagerank import pagerank


class TestParallelBlockEngine:
    def test_two_workers_match_reference(self, small_dataset):
        graph = small_dataset.citation_csr()
        reference = pagerank(graph, tol=1e-12, max_iter=500)
        partition = range_partition(graph, 4)
        engine = ParallelBlockEngine(graph, partition, num_workers=2)
        result = engine.run(tol=1e-12)
        assert result.converged
        assert np.abs(result.scores - reference.scores).sum() < 1e-8

    def test_single_worker_matches_reference(self, small_dataset):
        graph = small_dataset.citation_csr()
        reference = pagerank(graph, tol=1e-12, max_iter=500)
        partition = range_partition(graph, 2)
        result = ParallelBlockEngine(graph, partition,
                                     num_workers=1).run(tol=1e-12)
        assert np.abs(result.scores - reference.scores).sum() < 1e-8

    def test_validation(self, small_dataset):
        graph = small_dataset.citation_csr()
        partition = range_partition(graph, 2)
        with pytest.raises(ConfigError):
            ParallelBlockEngine(graph, partition, num_workers=0)
        with pytest.raises(ConfigError):
            ParallelBlockEngine(graph, partition, damping=1.0)
        engine = ParallelBlockEngine(graph, partition, num_workers=1)
        with pytest.raises(ConfigError):
            engine.run(tol=0)


class TestPayloadDiscipline:
    """Regression: every worker used to receive the whole block payload."""

    def test_workers_only_get_their_blocks(self, small_dataset):
        graph = small_dataset.citation_csr()
        partition = range_partition(graph, 4)
        engine = ParallelBlockEngine(graph, partition, num_workers=2)
        assert len(engine._worker_payloads) == 2
        seen = []
        for worker, payload in enumerate(engine._worker_payloads):
            assert sorted(payload) == \
                sorted(engine._assignment_to_worker[worker])
            seen.extend(payload)
        # Together the payloads cover every block exactly once.
        assert sorted(seen) == list(range(partition.num_blocks))

    def test_payload_sizes_shrink_per_worker(self, small_dataset):
        """Two workers each carry roughly half the single-worker payload."""
        import pickle

        graph = small_dataset.citation_csr()
        partition = range_partition(graph, 4)
        one = ParallelBlockEngine(graph, partition, num_workers=1)
        two = ParallelBlockEngine(graph, partition, num_workers=2)
        size_one = len(pickle.dumps(one._worker_payloads[0]))
        largest_of_two = max(len(pickle.dumps(p))
                             for p in two._worker_payloads)
        assert largest_of_two < size_one


class TestParallelTelemetry:
    def test_fixed_point_unchanged_and_bytes_recorded(self, small_dataset):
        from repro.obs import SolverTelemetry

        graph = small_dataset.citation_csr()
        partition = range_partition(graph, 4)
        plain = ParallelBlockEngine(graph, partition,
                                    num_workers=2).run(tol=1e-12)
        telemetry = SolverTelemetry("parallel")
        observed = ParallelBlockEngine(graph, partition, num_workers=2).run(
            tol=1e-12, telemetry=telemetry)
        assert np.array_equal(plain.scores, observed.scores)
        assert observed.supersteps == plain.supersteps

        assert telemetry.num_supersteps == observed.supersteps
        assert telemetry.bytes_shipped > 0
        assert telemetry.total_messages == observed.messages
        assert sum(r.local_iterations for r in telemetry.supersteps) == \
            observed.local_iterations
        # Worker attribution covers every block exactly once.
        owned = sorted(b for blocks in telemetry.worker_blocks.values()
                       for b in blocks)
        assert owned == list(range(partition.num_blocks))
        # Per-superstep block attribution sums to the step's local count.
        for record in telemetry.supersteps:
            assert sum(record.block_iterations.values()) == \
                record.local_iterations
