"""LiveRanker (full-model dynamic ranking) tests."""

import numpy as np
import pytest
from scipy.stats import spearmanr

from repro.errors import ConfigError
from repro.core.model import ArticleRanker, RankerConfig
from repro.engine.live import LiveRanker
from repro.engine.updates import UpdateBatch, yearly_updates


@pytest.fixture(scope="module")
def stream(small_dataset):
    _, max_year = small_dataset.year_range()
    return yearly_updates(small_dataset, max_year - 2)


class TestBootstrap:
    def test_initial_ranking_matches_batch_model(self, stream):
        base, _ = stream
        live = LiveRanker(base)
        batch_result = ArticleRanker().rank(base)
        # Same prestige (exact bootstrap solve), same assembly.
        assert np.abs(live.result.scores
                      - batch_result.scores).max() < 1e-9

    def test_observation_year_rejected(self, stream):
        base, _ = stream
        with pytest.raises(ConfigError):
            LiveRanker(base, RankerConfig(observation_year=2050))


class TestApply:
    def test_tracks_batch_model_through_stream(self, stream,
                                               small_dataset):
        base, batches = stream
        live = LiveRanker(base, delta_threshold=1e-4)
        for batch in batches:
            result, report = live.apply(batch)
            assert report.converged
            assert len(result.scores) == live.dataset.num_articles
        assert live.dataset.num_articles == small_dataset.num_articles

        # The maintained ranking must agree with a cold full solve where
        # it matters: the head of the ranking and the strong half.
        # (Full-vector rank correlation is dominated by the near-tied
        # tail, where the incremental engine's bounded prestige drift
        # legitimately reshuffles ranks.)
        cold = ArticleRanker().rank(live.dataset)
        top_live = {i for i, _ in live.result.top(50)}
        top_cold = {i for i, _ in cold.top(50)}
        assert len(top_live & top_cold) >= 45
        strong = cold.scores > np.median(cold.scores)
        rho = spearmanr(live.result.scores[strong],
                        cold.scores[strong]).statistic
        assert rho > 0.95

    def test_prestige_drift_bounded(self, stream):
        base, batches = stream
        live = LiveRanker(base, delta_threshold=1e-4)
        for batch in batches:
            live.apply(batch)
        assert live.prestige_error_vs_exact() < 1e-2

    def test_empty_batch_is_stable(self, stream):
        base, _ = stream
        live = LiveRanker(base)
        before = live.result.scores.copy()
        result, _ = live.apply(UpdateBatch(articles=()))
        assert np.abs(result.scores - before).max() < 1e-12

    def test_new_articles_enter_ranking(self, stream):
        base, batches = stream
        live = LiveRanker(base)
        result, _ = live.apply(batches[0])
        new_ids = {a.id for a in batches[0].articles}
        assert new_ids <= set(result.by_id())
