"""Block-centric and vertex-centric engine tests."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.engine.blocks import BlockEngine, vertex_centric_pagerank
from repro.graph.csr import CSRGraph
from repro.graph.partition import hash_partition, range_partition
from repro.ranking.pagerank import pagerank


@pytest.fixture(scope="module")
def dataset_graph(request):
    return None


class TestBlockEngine:
    def test_matches_reference_range_partition(self, small_dataset):
        graph = small_dataset.citation_csr()
        reference = pagerank(graph, tol=1e-12, max_iter=500)
        partition = range_partition(graph, 4)
        result = BlockEngine(graph, partition).run(tol=1e-12)
        assert result.converged
        assert np.abs(result.scores - reference.scores).sum() < 1e-8

    def test_matches_reference_hash_partition(self, small_dataset):
        graph = small_dataset.citation_csr()
        reference = pagerank(graph, tol=1e-12, max_iter=500)
        partition = hash_partition(graph, 4, seed=1)
        result = BlockEngine(graph, partition).run(tol=1e-12)
        assert np.abs(result.scores - reference.scores).sum() < 1e-8

    def test_fewer_supersteps_than_vertex_centric(self, small_dataset):
        graph = small_dataset.citation_csr()
        partition = range_partition(graph, 4)
        block = BlockEngine(graph, partition).run()
        vertex = vertex_centric_pagerank(graph, partition)
        assert block.supersteps < vertex.supersteps
        assert block.messages < vertex.messages

    def test_message_accounting(self, small_dataset):
        graph = small_dataset.citation_csr()
        partition = range_partition(graph, 4)
        cut = partition.edge_cut(graph)
        result = BlockEngine(graph, partition).run()
        assert result.messages == cut * result.supersteps

    def test_weighted_edges(self, small_dataset):
        graph = small_dataset.citation_csr()
        rng = np.random.default_rng(0)
        weights = rng.random(graph.num_edges) + 0.1
        reference = pagerank(graph, edge_weights=weights, tol=1e-12,
                             max_iter=500)
        partition = range_partition(graph, 3)
        result = BlockEngine(graph, partition,
                             edge_weights=weights).run(tol=1e-12)
        assert np.abs(result.scores - reference.scores).sum() < 1e-8

    def test_single_block_equals_reference(self, small_dataset):
        graph = small_dataset.citation_csr()
        partition = range_partition(graph, 1)
        result = BlockEngine(graph, partition).run(tol=1e-12)
        reference = pagerank(graph, tol=1e-12, max_iter=500)
        assert np.abs(result.scores - reference.scores).sum() < 1e-8

    def test_custom_block_order(self, small_dataset):
        graph = small_dataset.citation_csr()
        partition = range_partition(graph, 4)
        engine = BlockEngine(graph, partition)
        forward = engine.run(block_order=[0, 1, 2, 3])
        assert forward.converged
        with pytest.raises(ConfigError):
            engine.run(block_order=[0, 0, 1, 2])

    def test_partition_coverage_checked(self, small_dataset):
        graph = small_dataset.citation_csr()
        other = CSRGraph.from_edges([(0, 1)])
        partition = range_partition(other, 2)
        with pytest.raises(ConfigError):
            BlockEngine(graph, partition)

    @pytest.mark.parametrize("kwargs", [
        {"tol": 0}, {"max_supersteps": 0},
        {"local_tol": 0}, {"local_max_iter": 0},
    ])
    def test_run_validation(self, small_dataset, kwargs):
        graph = small_dataset.citation_csr()
        engine = BlockEngine(graph, range_partition(graph, 2))
        with pytest.raises(ConfigError):
            engine.run(**kwargs)

    def test_empty_graph(self):
        graph = CSRGraph.from_edges([], nodes=[])
        engine = BlockEngine(graph, range_partition(graph, 2))
        assert engine.run().converged


class TestVertexCentric:
    def test_matches_reference(self, small_dataset):
        graph = small_dataset.citation_csr()
        reference = pagerank(graph, tol=1e-12, max_iter=500)
        partition = range_partition(graph, 4)
        result = vertex_centric_pagerank(graph, partition, tol=1e-12,
                                         max_supersteps=500)
        assert np.abs(result.scores - reference.scores).sum() < 1e-8

    def test_messages_per_superstep_is_cut(self, small_dataset):
        graph = small_dataset.citation_csr()
        partition = hash_partition(graph, 3, seed=0)
        result = vertex_centric_pagerank(graph, partition)
        assert result.messages == \
            partition.edge_cut(graph) * result.supersteps

    def test_validation(self, small_dataset):
        graph = small_dataset.citation_csr()
        partition = range_partition(graph, 2)
        with pytest.raises(ConfigError):
            vertex_centric_pagerank(graph, partition, damping=1.0)
        with pytest.raises(ConfigError):
            vertex_centric_pagerank(graph, partition, tol=0)


class TestBlockTelemetry:
    def test_scores_identical_and_supersteps_recorded(self, small_dataset):
        from repro.obs import SolverTelemetry

        graph = small_dataset.citation_csr()
        partition = range_partition(graph, 4)
        plain = BlockEngine(graph, partition).run(tol=1e-12)
        telemetry = SolverTelemetry("blocks")
        observed = BlockEngine(graph, partition).run(tol=1e-12,
                                                     telemetry=telemetry)
        assert np.array_equal(plain.scores, observed.scores)
        assert telemetry.num_supersteps == observed.supersteps
        assert telemetry.total_messages == observed.messages
        assert all(r.seconds >= 0 for r in telemetry.supersteps)
        # Residual trajectory is the per-superstep one and ends converged.
        assert telemetry.supersteps[-1].residual <= 1e-12

    def test_vertex_centric_telemetry(self, small_dataset):
        from repro.obs import SolverTelemetry

        graph = small_dataset.citation_csr()
        partition = range_partition(graph, 4)
        telemetry = SolverTelemetry("vertex")
        result = vertex_centric_pagerank(graph, partition,
                                         telemetry=telemetry)
        assert telemetry.num_supersteps == result.supersteps
        assert telemetry.total_messages == result.messages
        # One Jacobi pass per superstep in the vertex-centric model.
        assert all(r.local_iterations == 1 for r in telemetry.supersteps)

    def test_bad_initial_rejected(self, small_dataset):
        graph = small_dataset.citation_csr()
        partition = range_partition(graph, 4)
        with pytest.raises(ConfigError):
            BlockEngine(graph, partition).run(
                initial=np.zeros(graph.num_nodes))
        with pytest.raises(ConfigError):
            BlockEngine(graph, partition).run(initial=np.ones(3))
