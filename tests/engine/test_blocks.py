"""Block-centric and vertex-centric engine tests."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.engine.blocks import BlockEngine, vertex_centric_pagerank
from repro.graph.csr import CSRGraph
from repro.graph.partition import hash_partition, range_partition
from repro.ranking.pagerank import pagerank


@pytest.fixture(scope="module")
def dataset_graph(request):
    return None


class TestBlockEngine:
    def test_matches_reference_range_partition(self, small_dataset):
        graph = small_dataset.citation_csr()
        reference = pagerank(graph, tol=1e-12, max_iter=500)
        partition = range_partition(graph, 4)
        result = BlockEngine(graph, partition).run(tol=1e-12)
        assert result.converged
        assert np.abs(result.scores - reference.scores).sum() < 1e-8

    def test_matches_reference_hash_partition(self, small_dataset):
        graph = small_dataset.citation_csr()
        reference = pagerank(graph, tol=1e-12, max_iter=500)
        partition = hash_partition(graph, 4, seed=1)
        result = BlockEngine(graph, partition).run(tol=1e-12)
        assert np.abs(result.scores - reference.scores).sum() < 1e-8

    def test_fewer_supersteps_than_vertex_centric(self, small_dataset):
        graph = small_dataset.citation_csr()
        partition = range_partition(graph, 4)
        block = BlockEngine(graph, partition).run()
        vertex = vertex_centric_pagerank(graph, partition)
        assert block.supersteps < vertex.supersteps
        assert block.messages < vertex.messages

    def test_message_accounting(self, small_dataset):
        graph = small_dataset.citation_csr()
        partition = range_partition(graph, 4)
        cut = partition.edge_cut(graph)
        result = BlockEngine(graph, partition).run()
        assert result.messages == cut * result.supersteps

    def test_weighted_edges(self, small_dataset):
        graph = small_dataset.citation_csr()
        rng = np.random.default_rng(0)
        weights = rng.random(graph.num_edges) + 0.1
        reference = pagerank(graph, edge_weights=weights, tol=1e-12,
                             max_iter=500)
        partition = range_partition(graph, 3)
        result = BlockEngine(graph, partition,
                             edge_weights=weights).run(tol=1e-12)
        assert np.abs(result.scores - reference.scores).sum() < 1e-8

    def test_single_block_equals_reference(self, small_dataset):
        graph = small_dataset.citation_csr()
        partition = range_partition(graph, 1)
        result = BlockEngine(graph, partition).run(tol=1e-12)
        reference = pagerank(graph, tol=1e-12, max_iter=500)
        assert np.abs(result.scores - reference.scores).sum() < 1e-8

    def test_custom_block_order(self, small_dataset):
        graph = small_dataset.citation_csr()
        partition = range_partition(graph, 4)
        engine = BlockEngine(graph, partition)
        forward = engine.run(block_order=[0, 1, 2, 3])
        assert forward.converged
        with pytest.raises(ConfigError):
            engine.run(block_order=[0, 0, 1, 2])

    def test_partition_coverage_checked(self, small_dataset):
        graph = small_dataset.citation_csr()
        other = CSRGraph.from_edges([(0, 1)])
        partition = range_partition(other, 2)
        with pytest.raises(ConfigError):
            BlockEngine(graph, partition)

    @pytest.mark.parametrize("kwargs", [
        {"tol": 0}, {"max_supersteps": 0},
        {"local_tol": 0}, {"local_max_iter": 0},
    ])
    def test_run_validation(self, small_dataset, kwargs):
        graph = small_dataset.citation_csr()
        engine = BlockEngine(graph, range_partition(graph, 2))
        with pytest.raises(ConfigError):
            engine.run(**kwargs)

    def test_empty_graph(self):
        graph = CSRGraph.from_edges([], nodes=[])
        engine = BlockEngine(graph, range_partition(graph, 2))
        assert engine.run().converged


class TestVertexCentric:
    def test_matches_reference(self, small_dataset):
        graph = small_dataset.citation_csr()
        reference = pagerank(graph, tol=1e-12, max_iter=500)
        partition = range_partition(graph, 4)
        result = vertex_centric_pagerank(graph, partition, tol=1e-12,
                                         max_supersteps=500)
        assert np.abs(result.scores - reference.scores).sum() < 1e-8

    def test_messages_per_superstep_is_cut(self, small_dataset):
        graph = small_dataset.citation_csr()
        partition = hash_partition(graph, 3, seed=0)
        result = vertex_centric_pagerank(graph, partition)
        assert result.messages == \
            partition.edge_cut(graph) * result.supersteps

    def test_validation(self, small_dataset):
        graph = small_dataset.citation_csr()
        partition = range_partition(graph, 2)
        with pytest.raises(ConfigError):
            vertex_centric_pagerank(graph, partition, damping=1.0)
        with pytest.raises(ConfigError):
            vertex_centric_pagerank(graph, partition, tol=0)


class TestFrontierCompaction:
    """Compaction must be a bit-exact no-op with measurable savings."""

    def _chain_graph(self):
        # Nodes 0-19 form self-contained per-block chains that settle
        # after one superstep; nodes 20-39 form a long cross-block cycle
        # that keeps iterating, so the quiet blocks get skipped.
        edges = [(i, i + 1) for i in range(20) if (i + 1) % 5 != 0]
        edges += [(i, 20 + (i - 19) % 20) for i in range(20, 40)]
        return CSRGraph.from_edges(edges, nodes=range(40))

    def test_bit_identical_with_and_without(self, small_dataset):
        graph = small_dataset.citation_csr()
        partition = range_partition(graph, 4)
        engine = BlockEngine(graph, partition)
        on = engine.run(tol=1e-12, compaction=True)
        off = engine.run(tol=1e-12, compaction=False)
        assert np.array_equal(on.scores, off.scores)
        assert on.supersteps == off.supersteps
        assert on.residual == off.residual
        assert on.messages == off.messages
        assert off.blocks_skipped == 0

    def test_skips_recorded_and_work_saved(self):
        graph = self._chain_graph()
        partition = range_partition(graph, 8)
        engine = BlockEngine(graph, partition)
        on = engine.run(tol=1e-13, local_tol=1e-14, compaction=True)
        off = engine.run(tol=1e-13, local_tol=1e-14, compaction=False)
        assert np.array_equal(on.scores, off.scores)
        assert on.supersteps == off.supersteps
        assert on.blocks_skipped > 0
        assert on.local_iterations < off.local_iterations

    def test_telemetry_counts_skips(self):
        from repro.obs import SolverTelemetry

        graph = self._chain_graph()
        partition = range_partition(graph, 8)
        telemetry = SolverTelemetry("blocks")
        result = BlockEngine(graph, partition).run(
            tol=1e-13, local_tol=1e-14, telemetry=telemetry)
        assert result.blocks_skipped > 0
        assert telemetry.counters["blocks_skipped"] == \
            result.blocks_skipped


class TestEdgeWeightGuard:
    @pytest.mark.parametrize("bad", [np.nan, np.inf, -1.0])
    def test_block_operators_reject(self, small_dataset, bad):
        graph = small_dataset.citation_csr()
        partition = range_partition(graph, 4)
        weights = graph.weights.copy()
        weights[0] = bad
        with pytest.raises(ConfigError):
            BlockEngine(graph, partition, edge_weights=weights)

    def test_vertex_centric_rejects(self, small_dataset):
        graph = small_dataset.citation_csr()
        partition = range_partition(graph, 4)
        weights = graph.weights.copy()
        weights[-1] = np.nan
        with pytest.raises(ConfigError):
            vertex_centric_pagerank(graph, partition,
                                    edge_weights=weights)

    def test_honest_operator_contract(self, small_dataset):
        from repro.engine.blocks import BlockOperators, _block_operators

        graph = small_dataset.citation_csr()
        partition = range_partition(graph, 4)
        operators = _block_operators(graph, partition, None)
        assert isinstance(operators, BlockOperators)
        # The fifth field is the per-edge transition probability, not a
        # jump vector: one entry per edge, rows sum to at most 1.
        assert operators.probability.shape == (graph.num_edges,)
        assert operators.cut_edges == partition.edge_cut(graph)
        for block, sources in enumerate(operators.source_blocks):
            assert block not in sources.tolist()


class TestBlockTelemetry:
    def test_scores_identical_and_supersteps_recorded(self, small_dataset):
        from repro.obs import SolverTelemetry

        graph = small_dataset.citation_csr()
        partition = range_partition(graph, 4)
        plain = BlockEngine(graph, partition).run(tol=1e-12)
        telemetry = SolverTelemetry("blocks")
        observed = BlockEngine(graph, partition).run(tol=1e-12,
                                                     telemetry=telemetry)
        assert np.array_equal(plain.scores, observed.scores)
        assert telemetry.num_supersteps == observed.supersteps
        assert telemetry.total_messages == observed.messages
        assert all(r.seconds >= 0 for r in telemetry.supersteps)
        # Residual trajectory is the per-superstep one and ends converged.
        assert telemetry.supersteps[-1].residual <= 1e-12

    def test_vertex_centric_telemetry(self, small_dataset):
        from repro.obs import SolverTelemetry

        graph = small_dataset.citation_csr()
        partition = range_partition(graph, 4)
        telemetry = SolverTelemetry("vertex")
        result = vertex_centric_pagerank(graph, partition,
                                         telemetry=telemetry)
        assert telemetry.num_supersteps == result.supersteps
        assert telemetry.total_messages == result.messages
        # One Jacobi pass per superstep in the vertex-centric model.
        assert all(r.local_iterations == 1 for r in telemetry.supersteps)

    def test_bad_initial_rejected(self, small_dataset):
        graph = small_dataset.citation_csr()
        partition = range_partition(graph, 4)
        with pytest.raises(ConfigError):
            BlockEngine(graph, partition).run(
                initial=np.zeros(graph.num_nodes))
        with pytest.raises(ConfigError):
            BlockEngine(graph, partition).run(initial=np.ones(3))
