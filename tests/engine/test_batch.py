"""Batch ranker and solver-comparison tests."""


from repro.core.model import RankerConfig
from repro.engine.batch import BatchRanker, compare_solvers


class TestBatchRanker:
    def test_run_reports_timings(self, small_dataset):
        report = BatchRanker().run(small_dataset)
        assert report.total_seconds > 0
        stages = report.stage_timings
        assert stages
        assert sum(stages.values()) <= report.total_seconds + 0.1

    def test_custom_config(self, small_dataset):
        report = BatchRanker(RankerConfig(solver="power")).run(
            small_dataset)
        assert report.result.diagnostics["twpr_method"] == "power"


class TestCompareSolvers:
    def test_agreement_and_speedup(self, small_dataset):
        graph = small_dataset.citation_csr()
        years = small_dataset.article_years(graph)
        comparison = compare_solvers(graph, years)
        assert comparison.agreement_l1 < 1e-8
        assert comparison.iteration_speedup > 3
        assert comparison.naive.converged
        assert comparison.optimized.converged
        assert comparison.num_nodes == graph.num_nodes

    def test_custom_methods(self, small_dataset):
        graph = small_dataset.citation_csr()
        years = small_dataset.article_years(graph)
        comparison = compare_solvers(graph, years,
                                     methods=("power", "gauss_seidel"))
        assert comparison.optimized.method == "gauss_seidel"
        assert comparison.agreement_l1 < 1e-8

    def test_time_speedup_finite(self, small_dataset):
        graph = small_dataset.citation_csr()
        years = small_dataset.article_years(graph)
        comparison = compare_solvers(graph, years)
        assert comparison.time_speedup > 0
