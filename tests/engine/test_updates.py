"""Update-batch construction tests."""

import pytest

from repro.errors import ConfigError, DatasetError
from repro.data.schema import Article
from repro.engine.updates import (
    UpdateBatch,
    apply_update,
    fraction_update,
    validate_update_batch,
    yearly_updates,
)


class TestValidateUpdateBatch:
    def test_clean_batch_passes(self, tiny_dataset):
        batch = UpdateBatch(
            articles=(Article(id=10, title="new", year=2012),),
            citations=((10, 0), (4, 10)))
        validate_update_batch(batch, tiny_dataset)  # does not raise

    def test_duplicate_ids_within_batch_rejected(self, tiny_dataset):
        batch = UpdateBatch(articles=(
            Article(id=10, title="a", year=2012),
            Article(id=10, title="b", year=2013),))
        with pytest.raises(ConfigError, match="more than once"):
            validate_update_batch(batch, tiny_dataset)

    def test_dangling_citation_endpoint_rejected(self, tiny_dataset):
        batch = UpdateBatch(articles=(), citations=((0, 999),))
        with pytest.raises(ConfigError, match="999"):
            validate_update_batch(batch, tiny_dataset)

    def test_all_problems_reported_together(self, tiny_dataset):
        batch = UpdateBatch(
            articles=(Article(id=10, title="a", year=2012),
                      Article(id=10, title="b", year=2013)),
            citations=((888, 999),))
        with pytest.raises(ConfigError) as excinfo:
            validate_update_batch(batch, tiny_dataset)
        message = str(excinfo.value)
        assert "more than once" in message
        assert "endpoint" in message

    def test_incremental_engine_guards_malformed_batch(self,
                                                       tiny_dataset):
        from repro.engine.incremental import IncrementalEngine

        engine = IncrementalEngine(tiny_dataset)
        batch = UpdateBatch(articles=(), citations=((0, 999),))
        with pytest.raises(ConfigError):
            engine.apply(batch)


class TestApplyUpdate:
    def test_adds_articles_without_mutating_input(self, tiny_dataset):
        batch = UpdateBatch(articles=(
            Article(id=10, title="new", year=2012, references=(0, 4)),))
        updated = apply_update(tiny_dataset, batch)
        assert updated.num_articles == 6
        assert tiny_dataset.num_articles == 5
        assert updated.articles[10].references == (0, 4)

    def test_duplicate_article_rejected(self, tiny_dataset):
        batch = UpdateBatch(articles=(
            Article(id=0, title="dup", year=2012),))
        with pytest.raises(DatasetError):
            apply_update(tiny_dataset, batch)

    def test_new_entities_added(self, tiny_dataset):
        from repro.data.schema import Author, Venue
        batch = UpdateBatch(
            articles=(Article(id=10, title="n", year=2012, venue_id=7,
                              author_ids=(9,)),),
            venues=(Venue(id=7, name="NewVenue"),),
            authors=(Author(id=9, name="NewAuthor"),))
        updated = apply_update(tiny_dataset, batch)
        assert 7 in updated.venues
        assert 9 in updated.authors
        assert updated.validate(strict=True) == []

    def test_existing_entities_tolerated(self, tiny_dataset):
        from repro.data.schema import Venue
        batch = UpdateBatch(
            articles=(Article(id=10, title="n", year=2012, venue_id=0),),
            venues=(Venue(id=0, name="VLDB"),))
        updated = apply_update(tiny_dataset, batch)
        assert updated.num_venues == 2

    def test_batch_counters(self):
        batch = UpdateBatch(articles=(
            Article(id=1, title="a", year=2000, references=(5, 6)),
            Article(id=2, title="b", year=2000, references=(1,))))
        assert batch.num_articles == 2
        assert batch.num_citations == 3


class TestYearlyUpdates:
    def test_base_plus_batches_rebuild_dataset(self, small_dataset):
        min_year, max_year = small_dataset.year_range()
        from_year = max_year - 4
        base, batches = yearly_updates(small_dataset, from_year)
        assert all(a.year < from_year for a in base.articles.values())
        current = base
        for batch in batches:
            current = apply_update(current, batch)
        assert current.num_articles == small_dataset.num_articles
        assert current.validate(strict=True) == []

    def test_batches_ascend_by_year(self, small_dataset):
        _, max_year = small_dataset.year_range()
        _, batches = yearly_updates(small_dataset, max_year - 3)
        years = [batch.articles[0].year for batch in batches]
        assert years == sorted(years)

    def test_references_trimmed_to_visible(self, small_dataset):
        _, max_year = small_dataset.year_range()
        base, batches = yearly_updates(small_dataset, max_year - 3)
        visible = set(base.articles)
        for batch in batches:
            visible |= {a.id for a in batch.articles}
            for article in batch.articles:
                assert set(article.references) <= visible

    def test_from_year_bounds_checked(self, small_dataset):
        min_year, max_year = small_dataset.year_range()
        with pytest.raises(DatasetError):
            yearly_updates(small_dataset, min_year)
        with pytest.raises(DatasetError):
            yearly_updates(small_dataset, max_year + 1)


class TestFractionUpdate:
    def test_split_sizes(self, small_dataset):
        base, batch = fraction_update(small_dataset, 0.1)
        expected_batch = round(0.1 * small_dataset.num_articles)
        assert batch.num_articles == expected_batch
        assert base.num_articles + batch.num_articles == \
            small_dataset.num_articles

    def test_batch_holds_newest(self, small_dataset):
        base, batch = fraction_update(small_dataset, 0.05)
        newest_base = max(a.year for a in base.articles.values())
        oldest_batch = min(a.year for a in batch.articles)
        assert oldest_batch >= newest_base

    def test_base_is_consistent(self, small_dataset):
        base, _ = fraction_update(small_dataset, 0.2)
        assert base.validate(strict=True) == []

    def test_applying_restores_counts(self, small_dataset):
        base, batch = fraction_update(small_dataset, 0.1)
        rebuilt = apply_update(base, batch)
        assert rebuilt.num_articles == small_dataset.num_articles
        assert rebuilt.num_citations == small_dataset.num_citations

    def test_fraction_bounds(self, small_dataset):
        with pytest.raises(DatasetError):
            fraction_update(small_dataset, 0.0)
        with pytest.raises(DatasetError):
            fraction_update(small_dataset, 1.0)
