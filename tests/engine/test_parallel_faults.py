"""Fault-injected parallel engine runs (real worker processes die here).

Every test asserts the headline resilience property: recovery never
changes the math — the faulted run's fixed point is **bit-identical**
(``np.array_equal``, not approx) to the fault-free run, because retried,
respawned, and degraded blocks all go through the same solve path.
"""

import numpy as np
import pytest

from repro.obs import SolverTelemetry
from repro.engine.parallel import ParallelBlockEngine
from repro.graph.partition import range_partition
from repro.resilience import Deadline, FaultPlan, RetryPolicy

pytestmark = pytest.mark.faults

# Backoff tuned for tests: real sleeps, kept to milliseconds.
FAST_RETRIES = RetryPolicy(max_retries=2, base_delay=0.01,
                           max_delay=0.02, jitter=0.0)


@pytest.fixture(scope="module")
def graph_and_partition(small_dataset):
    graph = small_dataset.citation_csr()
    return graph, range_partition(graph, 4)


@pytest.fixture(scope="module")
def fault_free_scores(graph_and_partition):
    graph, partition = graph_and_partition
    result = ParallelBlockEngine(graph, partition, num_workers=2).run(
        tol=1e-10)
    assert result.converged
    return result.scores


class TestCrashRecovery:
    def test_crashed_worker_is_respawned_bit_identical(
            self, graph_and_partition, fault_free_scores):
        graph, partition = graph_and_partition
        plan = FaultPlan().crash_worker(1, superstep=2)
        telemetry = SolverTelemetry("parallel")
        engine = ParallelBlockEngine(graph, partition, num_workers=2,
                                     retry_policy=FAST_RETRIES,
                                     fault_plan=plan)
        result = engine.run(tol=1e-10, telemetry=telemetry)
        assert result.converged
        assert np.array_equal(result.scores, fault_free_scores)
        assert telemetry.counters["resilience.crashes"] == 1
        assert telemetry.counters["resilience.respawns"] == 1
        assert "resilience.degrades" not in telemetry.counters

    def test_seeded_random_crash_bit_identical(
            self, graph_and_partition, fault_free_scores):
        # The ISSUE acceptance scenario: a seeded plan kills one worker
        # somewhere mid-run; scores must not change by one ULP.
        graph, partition = graph_and_partition
        plan = FaultPlan(seed=42)
        worker, superstep = plan.crash_random_worker(
            num_workers=2, max_superstep=3)
        telemetry = SolverTelemetry("parallel")
        engine = ParallelBlockEngine(graph, partition, num_workers=2,
                                     retry_policy=FAST_RETRIES,
                                     fault_plan=plan)
        result = engine.run(tol=1e-10, telemetry=telemetry)
        assert result.converged
        assert np.array_equal(result.scores, fault_free_scores)
        [record] = [r for r in telemetry.recoveries if r.kind == "crash"]
        assert (record.worker, record.superstep) == (worker, superstep)

    def test_recovery_events_name_the_blocks(self, graph_and_partition):
        graph, partition = graph_and_partition
        plan = FaultPlan().crash_worker(0, superstep=1)
        telemetry = SolverTelemetry("parallel")
        engine = ParallelBlockEngine(graph, partition, num_workers=2,
                                     retry_policy=FAST_RETRIES,
                                     fault_plan=plan)
        engine.run(tol=1e-10, telemetry=telemetry)
        crash = telemetry.recoveries[0]
        assert crash.kind == "crash"
        assert crash.blocks == engine._assignment_to_worker[0]


class TestDegradation:
    def test_persistent_crasher_degrades_inline_bit_identical(
            self, graph_and_partition, fault_free_scores):
        graph, partition = graph_and_partition
        # Worker 0 dies on every attempt of superstep 1: retries burn
        # out and its blocks move inline into the coordinator.
        plan = FaultPlan().crash_worker(0, superstep=1, times=99)
        policy = RetryPolicy(max_retries=1, base_delay=0.0,
                             max_delay=0.0, jitter=0.0)
        telemetry = SolverTelemetry("parallel")
        engine = ParallelBlockEngine(graph, partition, num_workers=2,
                                     retry_policy=policy,
                                     fault_plan=plan)
        result = engine.run(tol=1e-10, telemetry=telemetry)
        assert result.converged
        assert np.array_equal(result.scores, fault_free_scores)
        assert telemetry.counters["resilience.crashes"] == 2
        assert telemetry.counters["resilience.respawns"] == 1
        assert telemetry.counters["resilience.degrades"] == 1

    def test_zero_retries_degrades_on_first_crash(
            self, graph_and_partition, fault_free_scores):
        graph, partition = graph_and_partition
        plan = FaultPlan().crash_worker(1, superstep=1, times=99)
        policy = RetryPolicy(max_retries=0, base_delay=0.0,
                             max_delay=0.0, jitter=0.0)
        telemetry = SolverTelemetry("parallel")
        result = ParallelBlockEngine(
            graph, partition, num_workers=2, retry_policy=policy,
            fault_plan=plan).run(tol=1e-10, telemetry=telemetry)
        assert result.converged
        assert np.array_equal(result.scores, fault_free_scores)
        assert "resilience.respawns" not in telemetry.counters
        assert telemetry.counters["resilience.degrades"] == 1


class TestDeadlines:
    def test_hung_worker_times_out_and_respawns_bit_identical(
            self, graph_and_partition, fault_free_scores):
        graph, partition = graph_and_partition
        # Worker 0 stalls well past the deadline on its first dispatch;
        # the respawned process (attempt 1) runs clean.
        plan = FaultPlan().delay_task(0, superstep=1, seconds=30.0)
        telemetry = SolverTelemetry("parallel")
        engine = ParallelBlockEngine(graph, partition, num_workers=2,
                                     retry_policy=FAST_RETRIES,
                                     deadline=Deadline(0.5),
                                     fault_plan=plan)
        result = engine.run(tol=1e-10, telemetry=telemetry)
        assert result.converged
        # Even if a slow CI box times out a healthy worker too, recovery
        # is score-preserving, so this assertion stays robust.
        assert np.array_equal(result.scores, fault_free_scores)
        assert telemetry.counters["resilience.timeouts"] >= 1
        assert telemetry.counters["resilience.respawns"] >= 1
