"""Serving score board: seqlock publish/read across the shm segment."""

import numpy as np
import pytest

from repro.engine.shm import (SHARED_MEMORY_AVAILABLE, ScoreBoardReader,
                              ScoreBoardWriter)

pytestmark = pytest.mark.skipif(
    not SHARED_MEMORY_AVAILABLE,
    reason="multiprocessing.shared_memory unavailable")


@pytest.fixture()
def writer():
    board = ScoreBoardWriter(capacity=16)
    yield board
    board.close()


class TestPublish:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            ScoreBoardWriter(capacity=0)

    def test_roundtrip_is_bit_identical(self, writer):
        ids = np.array([3, 1, 7], dtype=np.int64)
        scores = np.array([0.1, 0.7, 1 / 3], dtype=np.float64)
        writer.publish(ids, scores, epoch=0)
        reader = ScoreBoardReader(writer.layout)
        epoch, got_ids, got_scores = reader.read()
        assert epoch == 0
        assert np.array_equal(got_ids, ids)
        # Bit-exact: the serving tie order depends on it.
        assert got_scores.tobytes() == scores.tobytes()
        reader.close()

    def test_read_before_first_publish_raises(self, writer):
        reader = ScoreBoardReader(writer.layout)
        with pytest.raises(ValueError, match="no published epoch"):
            reader.read()
        reader.close()

    def test_epochs_must_be_consecutive(self, writer):
        ids = np.arange(3, dtype=np.int64)
        scores = np.ones(3)
        writer.publish(ids, scores, epoch=0)
        with pytest.raises(ValueError, match="consecutively"):
            writer.publish(ids, scores, epoch=2)

    def test_ids_are_append_only(self, writer):
        writer.publish(np.array([5, 2]), np.array([1.0, 2.0]), epoch=0)
        with pytest.raises(ValueError, match="append-only"):
            writer.publish(np.array([2, 5, 9]),
                           np.array([1.0, 2.0, 3.0]), epoch=1)
        # Extending the prefix is fine.
        writer.publish(np.array([5, 2, 9]),
                       np.array([1.0, 2.0, 3.0]), epoch=1)
        assert writer.epoch == 1

    def test_shrinking_rejected(self, writer):
        writer.publish(np.array([5, 2]), np.array([1.0, 2.0]), epoch=0)
        with pytest.raises(ValueError, match="append-only"):
            writer.publish(np.array([5]), np.array([1.0]), epoch=1)

    def test_capacity_enforced(self, writer):
        too_many = np.arange(17, dtype=np.int64)
        with pytest.raises(ValueError, match="capacity"):
            writer.publish(too_many, too_many.astype(float), epoch=0)

    def test_misaligned_arrays_rejected(self, writer):
        with pytest.raises(ValueError, match="aligned"):
            writer.publish(np.array([1, 2]), np.array([1.0]), epoch=0)

    def test_double_buffering_keeps_old_epoch_intact(self, writer):
        """Epoch e's buffer is untouched until e+2 — the seqlock
        window a reader's consistency check relies on."""
        writer.publish(np.array([1, 2]), np.array([1.0, 2.0]), epoch=0)
        reader = ScoreBoardReader(writer.layout)
        writer.publish(np.array([1, 2, 3]),
                       np.array([9.0, 8.0, 7.0]), epoch=1)
        epoch, ids, scores = reader.read()
        assert epoch == 1
        assert scores.tolist() == [9.0, 8.0, 7.0]
        reader.close()

    def test_close_is_idempotent(self):
        board = ScoreBoardWriter(capacity=4)
        board.close()
        board.close()


class TestFloat32Mode:
    def test_dtype_validation(self):
        with pytest.raises(ValueError, match="dtype"):
            ScoreBoardWriter(capacity=4, dtype=np.int32)
        with pytest.raises(ValueError, match="dtype"):
            ScoreBoardWriter(capacity=4, dtype=np.float16)

    def test_roundtrip_within_tolerance(self):
        from repro.engine.shm import (FLOAT32_PARITY_ATOL,
                                      FLOAT32_PARITY_RTOL)

        board = ScoreBoardWriter(capacity=8, dtype=np.float32)
        try:
            ids = np.arange(5, dtype=np.int64)
            scores = np.array([0.1, 0.7, 1 / 3, 1e-6, 0.999999])
            board.publish(ids, scores, epoch=0)
            reader = ScoreBoardReader(board.layout)
            epoch, got_ids, got_scores = reader.read()
            assert epoch == 0
            assert np.array_equal(got_ids, ids)
            # Readers always see float64, narrowed through float32.
            assert got_scores.dtype == np.float64
            assert np.allclose(got_scores, scores,
                               rtol=FLOAT32_PARITY_RTOL,
                               atol=FLOAT32_PARITY_ATOL)
            reader.close()
        finally:
            board.close()

    def test_float64_roundtrip_still_bit_exact(self):
        board = ScoreBoardWriter(capacity=4, dtype=np.float64)
        try:
            scores = np.array([0.1, 1 / 3])
            board.publish(np.array([1, 2]), scores, epoch=0)
            reader = ScoreBoardReader(board.layout)
            _, _, got = reader.read()
            assert got.tobytes() == scores.tobytes()
            reader.close()
        finally:
            board.close()

    def test_guardrail_rejects_out_of_range_scores(self):
        # Beyond float32 range the narrowed copy overflows to inf, so
        # the parity check must refuse the publish.
        board = ScoreBoardWriter(capacity=4, dtype=np.float32)
        try:
            huge = np.array([1.0, 1e39])
            with pytest.raises(ValueError, match="parity guardrail"):
                board.publish(np.array([1, 2]), huge, epoch=0)
            # The failed publish must not have advanced the epoch.
            assert board.epoch == -1
            board.publish(np.array([1, 2]), np.array([0.5, 0.5]),
                          epoch=0)
            assert board.epoch == 0
        finally:
            board.close()
