"""LiveRanker auto-checkpointing, rotation pruning, and resume."""

import numpy as np
import pytest

from repro.errors import ConfigError, StorageError
from repro.engine.live import LiveRanker, checkpoint_rotations
from repro.engine.updates import yearly_updates


@pytest.fixture(scope="module")
def stream(small_dataset):
    base, batches = yearly_updates(small_dataset, from_year=2011)
    assert len(batches) >= 4
    return base, batches


class TestValidation:
    def test_every_requires_a_directory(self, stream):
        base, _ = stream
        with pytest.raises(ConfigError, match="checkpoint_dir"):
            LiveRanker(base, checkpoint_every=2)

    def test_negative_every_rejected(self, stream, tmp_path):
        base, _ = stream
        with pytest.raises(ConfigError, match="checkpoint_every"):
            LiveRanker(base, checkpoint_dir=tmp_path,
                       checkpoint_every=-1)

    def test_keep_must_be_positive(self, stream, tmp_path):
        base, _ = stream
        with pytest.raises(ConfigError, match="checkpoint_keep"):
            LiveRanker(base, checkpoint_dir=tmp_path, checkpoint_keep=0)

    def test_explicit_checkpoint_needs_directory(self, stream):
        base, _ = stream
        with pytest.raises(ConfigError, match="no checkpoint_dir"):
            LiveRanker(base).checkpoint()


class TestRotation:
    def test_auto_checkpoint_every_batch_keeps_newest_k(self, stream,
                                                        tmp_path):
        base, batches = stream
        live = LiveRanker(base, checkpoint_dir=tmp_path,
                          checkpoint_every=1, checkpoint_keep=2)
        for batch in batches[:4]:
            live.apply(batch)
        names = [p.name for p in checkpoint_rotations(tmp_path)]
        assert names == ["ckpt-00000004", "ckpt-00000003"]

    def test_every_n_skips_intermediate_batches(self, stream, tmp_path):
        base, batches = stream
        live = LiveRanker(base, checkpoint_dir=tmp_path,
                          checkpoint_every=2)
        for batch in batches[:3]:
            live.apply(batch)
        assert [p.name for p in checkpoint_rotations(tmp_path)] == \
            ["ckpt-00000002"]

    def test_zero_every_means_manual_only(self, stream, tmp_path):
        base, batches = stream
        live = LiveRanker(base, checkpoint_dir=tmp_path)
        live.apply(batches[0])
        assert checkpoint_rotations(tmp_path) == []
        rotation = live.checkpoint()
        assert rotation.name == "ckpt-00000001"


class TestResume:
    def test_resume_continues_bit_identical(self, stream, tmp_path):
        base, batches = stream
        live = LiveRanker(base, checkpoint_dir=tmp_path,
                          checkpoint_every=1)
        for batch in batches[:2]:
            live.apply(batch)

        resumed = LiveRanker.resume(tmp_path)
        assert resumed.batches_applied == 2
        assert np.array_equal(resumed.result.scores, live.result.scores)

        # Continue both sessions in lockstep: the resumed one must track
        # the uninterrupted one exactly.
        expected, _ = live.apply(batches[2])
        actual, _ = resumed.apply(batches[2])
        assert np.array_equal(actual.scores, expected.scores)
        assert np.array_equal(actual.node_ids, expected.node_ids)

    def test_resume_skips_corrupt_newest_rotation(self, stream,
                                                  tmp_path):
        base, batches = stream
        live = LiveRanker(base, checkpoint_dir=tmp_path,
                          checkpoint_every=1, checkpoint_keep=3)
        for batch in batches[:2]:
            live.apply(batch)
        newest = checkpoint_rotations(tmp_path)[0]
        with open(newest / "state.npz", "r+b") as handle:
            handle.truncate(32)

        resumed = LiveRanker.resume(tmp_path)
        assert resumed.batches_applied == 1  # fell back one rotation

    def test_resume_with_all_rotations_corrupt(self, stream, tmp_path):
        base, batches = stream
        live = LiveRanker(base, checkpoint_dir=tmp_path,
                          checkpoint_every=1)
        live.apply(batches[0])
        for rotation in checkpoint_rotations(tmp_path):
            (rotation / "engine.json").unlink()
        with pytest.raises(StorageError, match="no intact checkpoint"):
            LiveRanker.resume(tmp_path)

    def test_resume_without_metadata(self, tmp_path):
        with pytest.raises(StorageError, match="live.json"):
            LiveRanker.resume(tmp_path)

    def test_resume_restores_checkpoint_settings(self, stream,
                                                 tmp_path):
        base, batches = stream
        live = LiveRanker(base, checkpoint_dir=tmp_path,
                          checkpoint_every=1, checkpoint_keep=2)
        live.apply(batches[0])
        resumed = LiveRanker.resume(tmp_path)
        assert resumed._checkpoint_every == 1
        assert resumed._checkpoint_keep == 2
        # ... and keeps checkpointing: the next batch writes ckpt-2.
        resumed.apply(batches[1])
        assert checkpoint_rotations(tmp_path)[0].name == "ckpt-00000002"

    def test_resume_preserves_config(self, stream, tmp_path):
        from repro.core.model import RankerConfig

        base, batches = stream
        config = RankerConfig(theta=0.7, weight_venue=0.4)
        live = LiveRanker(base, config=config, checkpoint_dir=tmp_path,
                          checkpoint_every=1)
        live.apply(batches[0])
        resumed = LiveRanker.resume(tmp_path)
        assert resumed.config == config


class TestPruneBeforeSave:
    @pytest.mark.faults
    def test_crash_mid_save_still_prunes_stale_backlog(self, stream,
                                                       tmp_path):
        from repro.resilience import FaultPlan, InjectedCrash

        base, batches = stream
        # Fabricate the debris of repeated crash-restart cycles: each
        # crashed predecessor saved a rotation but died before its
        # post-save prune, leaving a backlog beyond checkpoint_keep.
        for number in range(1, 6):
            stale = tmp_path / f"ckpt-{number:08d}"
            stale.mkdir(parents=True)
            (stale / "engine.json").write_text("{}")
        assert len(checkpoint_rotations(tmp_path)) == 5

        live = LiveRanker(base, checkpoint_dir=tmp_path,
                          checkpoint_keep=2,
                          fault_plan=FaultPlan().crash_after_files(1))
        for batch in batches[:2]:
            live.apply(batch)
        with pytest.raises(InjectedCrash):
            live.checkpoint()

        # The save crashed, but the pre-save prune already cleared the
        # backlog: at most keep survivors plus the torn new rotation.
        names = [p.name for p in checkpoint_rotations(tmp_path)]
        assert len(names) <= 3
        for number in range(1, 4):
            assert f"ckpt-{number:08d}" not in names

    def test_rotations_never_exceed_keep_after_checkpoint(self, stream,
                                                          tmp_path):
        base, batches = stream
        for number in range(1, 6):
            stale = tmp_path / f"ckpt-{number:08d}"
            stale.mkdir(parents=True)
            (stale / "engine.json").write_text("{}")

        live = LiveRanker(base, checkpoint_dir=tmp_path,
                          checkpoint_keep=2)
        for batch in batches[:2]:
            live.apply(batch)
        live.checkpoint()
        assert len(checkpoint_rotations(tmp_path)) == 2
