"""Cross-module integration tests: the full pipelines a user would run."""

import numpy as np
import pytest
from scipy.stats import spearmanr

from repro import (
    ArticleRanker,
    IncrementalEngine,
    RankerConfig,
)
from repro.data.aminer import parse_aminer, write_aminer
from repro.data.ground_truth import build_ground_truth
from repro.engine.updates import yearly_updates
from repro.eval.protocol import evaluate_ranking
from repro.ranking.citation_count import citation_count
from repro.ranking.pagerank import pagerank
from repro.storage.store import DatasetStore


class TestBatchPipeline:
    def test_generate_rank_evaluate(self, medium_dataset):
        truth = build_ground_truth(medium_dataset, num_pairs=500, seed=2)
        result = ArticleRanker().rank(medium_dataset)
        report = evaluate_ranking(result.by_id(), truth)
        # The assembled model must clearly beat chance.
        assert report.pairwise > 0.6
        assert report.quality_spearman > 0.3

    def test_model_beats_static_baselines(self, medium_dataset):
        truth = build_ground_truth(medium_dataset, num_pairs=800, seed=4)
        graph = medium_dataset.citation_csr()
        ids = [int(i) for i in graph.node_ids]
        full = evaluate_ranking(
            ArticleRanker().rank(medium_dataset).by_id(), truth)
        pr = evaluate_ranking(
            dict(zip(ids, pagerank(graph).scores)), truth)
        cc = evaluate_ranking(
            dict(zip(ids, citation_count(graph))), truth)
        assert full.pairwise > pr.pairwise
        assert full.pairwise > cc.pairwise

    def test_rank_store_reload_rank(self, medium_dataset, tmp_path):
        result = ArticleRanker().rank(medium_dataset)
        with DatasetStore(tmp_path / "s.db") as store:
            store.save_dataset(medium_dataset)
            store.save_ranking(medium_dataset.name, "qisar",
                               result.by_id())
            reloaded = store.load_dataset(medium_dataset.name)
            top_stored = store.top_articles(medium_dataset.name,
                                            "qisar", limit=10)
        again = ArticleRanker().rank(reloaded)
        assert [i for i, _ in again.top(10)] == \
            [i for i, _ in top_stored]

    def test_format_roundtrip_preserves_ranking(self, small_dataset,
                                                tmp_path):
        write_aminer(small_dataset, tmp_path / "a.txt")
        reparsed = parse_aminer(tmp_path / "a.txt")
        original = ArticleRanker().rank(small_dataset)
        roundtripped = ArticleRanker().rank(reparsed)
        rho = spearmanr(
            [original.by_id()[i] for i in sorted(small_dataset.articles)],
            [roundtripped.by_id()[i]
             for i in sorted(reparsed.articles)]).statistic
        assert rho > 0.9999


class TestDynamicPipeline:
    def test_incremental_tracks_batch(self, medium_dataset):
        _, max_year = medium_dataset.year_range()
        base, batches = yearly_updates(medium_dataset, max_year - 1)
        engine = IncrementalEngine(base, delta_threshold=1e-4)
        for batch in batches:
            engine.apply(batch)
        # Maintained prestige must match a cold batch solve closely where
        # it matters: small total error and an identical head of the
        # ranking. (Full-vector rank correlation is meaningless here —
        # the never-cited tail ties at (1-d)/n up to 1e-9 noise.)
        exact = engine.exact_scores()
        assert np.abs(engine.scores - exact).sum() < 5e-3
        top_maintained = set(np.argsort(-engine.scores)[:100].tolist())
        top_exact = set(np.argsort(-exact)[:100].tolist())
        assert len(top_maintained & top_exact) >= 95
        strong = exact > np.median(exact)
        rho = spearmanr(engine.scores[strong], exact[strong]).statistic
        assert rho > 0.99

    def test_snapshot_plus_updates_equals_direct(self, small_dataset):
        _, max_year = small_dataset.year_range()
        base, batches = yearly_updates(small_dataset, max_year - 1)
        engine = IncrementalEngine(base)
        for batch in batches:
            engine.apply(batch)
        assert engine.dataset.num_articles == small_dataset.num_articles
        assert engine.dataset.num_citations == \
            small_dataset.num_citations


class TestSolverConsistencyAcrossStack:
    @pytest.mark.parametrize("solver", ["power", "gauss_seidel", "levels"])
    def test_model_invariant_to_solver(self, small_dataset, solver):
        reference = ArticleRanker(
            RankerConfig(solver="power")).rank(small_dataset)
        result = ArticleRanker(
            RankerConfig(solver=solver)).rank(small_dataset)
        assert np.abs(reference.scores - result.scores).max() < 1e-6
