"""Evaluation protocol tests."""

import pytest

from repro.errors import ConfigError
from repro.data.ground_truth import build_ground_truth
from repro.eval.protocol import evaluate_ranking, young_pairs


@pytest.fixture(scope="module")
def truth(medium_dataset):
    return build_ground_truth(medium_dataset, num_pairs=400, seed=5)


class TestEvaluateRanking:
    def test_quality_itself_is_perfect(self, medium_dataset, truth):
        scores = {a.id: a.quality
                  for a in medium_dataset.articles.values()}
        report = evaluate_ranking(scores, truth)
        assert report.pairwise == pytest.approx(1.0)
        assert report.quality_spearman == pytest.approx(1.0)
        assert report.ndcg[50] == pytest.approx(1.0)

    def test_inverted_quality_is_terrible(self, medium_dataset, truth):
        scores = {a.id: -a.quality
                  for a in medium_dataset.articles.values()}
        report = evaluate_ranking(scores, truth)
        assert report.pairwise == pytest.approx(0.0)
        assert report.quality_spearman == pytest.approx(-1.0)

    def test_constant_scores_are_coin_flips(self, medium_dataset, truth):
        scores = {a.id: 1.0 for a in medium_dataset.articles.values()}
        report = evaluate_ranking(scores, truth)
        assert report.pairwise == pytest.approx(0.5)

    def test_custom_ks(self, medium_dataset, truth):
        scores = {a.id: a.quality
                  for a in medium_dataset.articles.values()}
        report = evaluate_ranking(scores, truth, ndcg_ks=(10, 20),
                                  recall_ks=(50,))
        assert set(report.ndcg) == {10, 20}
        assert set(report.recall) == {50}

    def test_as_row_format(self, medium_dataset, truth):
        scores = {a.id: a.quality
                  for a in medium_dataset.articles.values()}
        row = evaluate_ranking(scores, truth).as_row()
        assert "pairwise" in row and "spearman" in row

    def test_missing_coverage_rejected(self, truth):
        with pytest.raises(ConfigError, match="missing from scores"):
            evaluate_ranking({1: 1.0}, truth)

    def test_empty_scores_rejected(self, truth):
        with pytest.raises(ConfigError):
            evaluate_ranking({}, truth)


class TestYoungPairs:
    def test_both_sides_young(self, medium_dataset, truth):
        pairs = young_pairs(medium_dataset, truth, window=5)
        _, max_year = medium_dataset.year_range()
        for a, b in pairs:
            assert medium_dataset.articles[a].year >= max_year - 5
            assert medium_dataset.articles[b].year >= max_year - 5

    def test_subset_of_original(self, medium_dataset, truth):
        pairs = young_pairs(medium_dataset, truth, window=5)
        assert set(pairs) <= set(truth.pairs)

    def test_impossible_window_raises(self, medium_dataset, truth):
        from repro.data.ground_truth import GroundTruth
        impossible = GroundTruth(pairs=truth.pairs[:1], awards=(),
                                 quality_by_id={})
        # Pick a pair that is certainly not both-in-final-year.
        old_pair = min(
            truth.pairs,
            key=lambda p: max(medium_dataset.articles[p[0]].year,
                              medium_dataset.articles[p[1]].year))
        impossible = GroundTruth(pairs=(old_pair,), awards=(),
                                 quality_by_id={})
        with pytest.raises(ConfigError):
            young_pairs(medium_dataset, impossible, window=0)

    def test_window_validation(self, medium_dataset, truth):
        with pytest.raises(ConfigError):
            young_pairs(medium_dataset, truth, window=-1)
