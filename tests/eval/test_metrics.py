"""Metric unit and property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.eval.metrics import (
    average_precision,
    kendall_tau,
    ndcg_at_k,
    pairwise_accuracy,
    precision_at_k,
    rank_disagreement,
    recall_at_k,
    spearman_rho,
    top_k_overlap,
)


class TestPairwiseAccuracy:
    def test_perfect(self):
        scores = {1: 3.0, 2: 2.0, 3: 1.0}
        assert pairwise_accuracy(scores, [(1, 2), (2, 3), (1, 3)]) == 1.0

    def test_inverted(self):
        scores = {1: 1.0, 2: 2.0}
        assert pairwise_accuracy(scores, [(1, 2)]) == 0.0

    def test_ties_half_credit(self):
        scores = {1: 1.0, 2: 1.0}
        assert pairwise_accuracy(scores, [(1, 2)]) == 0.5

    def test_missing_id_raises(self):
        with pytest.raises(ConfigError):
            pairwise_accuracy({1: 1.0}, [(1, 2)])

    def test_empty_pairs_raise(self):
        with pytest.raises(ConfigError):
            pairwise_accuracy({1: 1.0}, [])

    @settings(max_examples=30, deadline=None)
    @given(st.dictionaries(st.integers(0, 20),
                           st.floats(0, 100, allow_nan=False),
                           min_size=2, max_size=20))
    def test_bounded(self, scores):
        ids = sorted(scores)
        pairs = [(ids[0], ids[1]), (ids[1], ids[0])]
        value = pairwise_accuracy(scores, pairs)
        assert 0.0 <= value <= 1.0
        # Complementary pairs must sum to 1 (ties give 0.5 + 0.5).
        assert value == pytest.approx(0.5) or value in (0.0, 1.0, 0.5)


class TestPrecisionRecall:
    def test_precision_at_k(self):
        scores = {1: 4.0, 2: 3.0, 3: 2.0, 4: 1.0}
        assert precision_at_k(scores, {1, 3}, 2) == 0.5
        assert precision_at_k(scores, {1, 2}, 2) == 1.0

    def test_recall_at_k(self):
        scores = {1: 4.0, 2: 3.0, 3: 2.0, 4: 1.0}
        assert recall_at_k(scores, {1, 4}, 2) == 0.5
        assert recall_at_k(scores, {1, 4}, 4) == 1.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            precision_at_k({1: 1.0}, {1}, 0)
        with pytest.raises(ConfigError):
            recall_at_k({1: 1.0}, set(), 1)

    def test_average_precision(self):
        scores = {1: 4.0, 2: 3.0, 3: 2.0}
        # Relevant at ranks 1 and 3: AP = (1/1 + 2/3) / 2.
        assert average_precision(scores, {1, 3}) == \
            pytest.approx((1.0 + 2 / 3) / 2)

    def test_average_precision_no_hits(self):
        assert average_precision({1: 1.0}, {99}) == 0.0


class TestNdcg:
    def test_perfect_ranking(self):
        relevance = {1: 3.0, 2: 2.0, 3: 1.0}
        scores = {1: 0.9, 2: 0.5, 3: 0.1}
        assert ndcg_at_k(scores, relevance, 3) == pytest.approx(1.0)

    def test_worst_ranking_below_one(self):
        relevance = {1: 3.0, 2: 0.0}
        scores = {1: 0.1, 2: 0.9}
        assert ndcg_at_k(scores, relevance, 2) < 1.0

    def test_hand_computed(self):
        relevance = {1: 1.0, 2: 1.0}
        scores = {1: 0.2, 2: 0.9, 3: 0.5}
        # Order: 2, 3, 1 -> gains 1, 0, 1 at discounts 1, 1/log2(3), 0.5.
        dcg = 1.0 + 0.5
        idcg = 1.0 + 1.0 / np.log2(3)
        assert ndcg_at_k(scores, relevance, 3) == pytest.approx(dcg / idcg)

    def test_zero_relevance(self):
        assert ndcg_at_k({1: 1.0}, {}, 5) == 0.0

    def test_k_validation(self):
        with pytest.raises(ConfigError):
            ndcg_at_k({1: 1.0}, {1: 1.0}, 0)


class TestCorrelations:
    def test_spearman_perfect(self):
        assert spearman_rho([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_kendall_inverted(self):
        assert kendall_tau([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_alignment_checked(self):
        with pytest.raises(ConfigError):
            spearman_rho([1, 2], [1, 2, 3])
        with pytest.raises(ConfigError):
            kendall_tau([1], [1])


class TestRankDisagreement:
    def test_identical_rankings(self):
        scores = {1: 3.0, 2: 2.0, 3: 1.0}
        assert rank_disagreement(scores, dict(scores)) == 0.0

    def test_reversed_rankings(self):
        first = {1: 3.0, 2: 2.0, 3: 1.0}
        second = {1: 1.0, 2: 2.0, 3: 3.0}
        assert rank_disagreement(first, second) == 1.0

    def test_tie_counts_half(self):
        first = {1: 1.0, 2: 1.0}
        second = {1: 2.0, 2: 1.0}
        assert rank_disagreement(first, second) == 0.5

    def test_sampled_close_to_exact(self):
        rng = np.random.default_rng(0)
        ids = range(300)
        first = {i: float(rng.random()) for i in ids}
        second = {i: float(rng.random()) for i in ids}
        exact = rank_disagreement(first, second, num_samples=10**9)
        sampled = rank_disagreement(first, second, num_samples=20_000,
                                    seed=1)
        assert abs(exact - sampled) < 0.02

    def test_id_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            rank_disagreement({1: 1.0}, {2: 1.0})


class TestTopKOverlap:
    def test_identical(self):
        scores = {1: 3.0, 2: 2.0, 3: 1.0}
        assert top_k_overlap(scores, dict(scores), 2) == 1.0

    def test_disjoint(self):
        first = {1: 9.0, 2: 8.0, 3: 0.1, 4: 0.2}
        second = {1: 0.1, 2: 0.2, 3: 9.0, 4: 8.0}
        assert top_k_overlap(first, second, 2) == 0.0

    def test_k_validation(self):
        with pytest.raises(ConfigError):
            top_k_overlap({1: 1.0}, {1: 1.0}, 0)
