"""Significance-test tests."""

import pytest

from repro.errors import ConfigError
from repro.eval.significance import (
    paired_bootstrap_test,
    permutation_test,
)


@pytest.fixture()
def clear_cut():
    """Method A orders 40 pairs perfectly; method B inverts them all."""
    pairs = [(i, i + 100) for i in range(40)]
    scores_a = {}
    scores_b = {}
    for better, worse in pairs:
        scores_a[better], scores_a[worse] = 2.0, 1.0
        scores_b[better], scores_b[worse] = 1.0, 2.0
    return scores_a, scores_b, pairs


class TestBootstrap:
    def test_clear_advantage_significant(self, clear_cut):
        scores_a, scores_b, pairs = clear_cut
        result = paired_bootstrap_test(scores_a, scores_b, pairs,
                                       iterations=500, seed=1)
        assert result.advantage == pytest.approx(1.0)
        assert result.p_value == 0.0
        assert result.significant

    def test_identical_methods_not_significant(self, clear_cut):
        scores_a, _, pairs = clear_cut
        result = paired_bootstrap_test(scores_a, dict(scores_a), pairs,
                                       iterations=500, seed=1)
        assert result.advantage == 0.0
        assert not result.significant

    def test_deterministic(self, clear_cut):
        scores_a, scores_b, pairs = clear_cut
        first = paired_bootstrap_test(scores_a, scores_b, pairs,
                                      iterations=200, seed=9)
        second = paired_bootstrap_test(scores_a, scores_b, pairs,
                                       iterations=200, seed=9)
        assert first == second

    def test_validation(self, clear_cut):
        scores_a, scores_b, pairs = clear_cut
        with pytest.raises(ConfigError):
            paired_bootstrap_test(scores_a, scores_b, pairs,
                                  iterations=0)
        with pytest.raises(ConfigError):
            paired_bootstrap_test(scores_a, scores_b, [])
        with pytest.raises(ConfigError):
            paired_bootstrap_test({1: 1.0}, scores_b, pairs)


class TestPermutation:
    def test_clear_advantage_significant(self, clear_cut):
        scores_a, scores_b, pairs = clear_cut
        result = permutation_test(scores_a, scores_b, pairs,
                                  iterations=500, seed=1)
        assert result.advantage == pytest.approx(1.0)
        assert result.significant

    def test_symmetric_null_behaves(self, clear_cut):
        scores_a, _, pairs = clear_cut
        result = permutation_test(scores_a, dict(scores_a), pairs,
                                  iterations=500, seed=1)
        # Observed difference 0: every replicate reaches it.
        assert result.p_value == 1.0

    def test_agrees_with_bootstrap_on_real_data(self, medium_dataset):
        from repro.core.model import ArticleRanker
        from repro.data.ground_truth import build_ground_truth
        from repro.ranking.citation_count import citation_count

        truth = build_ground_truth(medium_dataset, num_pairs=300, seed=3)
        graph = medium_dataset.citation_csr()
        ids = [int(i) for i in graph.node_ids]
        model = ArticleRanker().rank(medium_dataset).by_id()
        counts = dict(zip(ids, citation_count(graph)))
        bootstrap = paired_bootstrap_test(model, counts, truth.pairs,
                                          iterations=300, seed=5)
        permutation = permutation_test(model, counts, truth.pairs,
                                       iterations=300, seed=5)
        assert bootstrap.advantage == permutation.advantage
        assert bootstrap.significant == permutation.significant
