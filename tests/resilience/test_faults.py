"""FaultPlan scripting/query semantics (no processes harmed here)."""

import pickle

import pytest

from repro.errors import ReproError
from repro.resilience import FaultPlan, InjectedCrash, WorkerFault


class TestWorkerFaultQueries:
    def test_fault_fires_on_scripted_dispatch_only(self):
        plan = FaultPlan().crash_worker(1, 2)
        assert plan.worker_fault(1, 2, attempt=0) is not None
        assert plan.worker_fault(0, 2, attempt=0) is None
        assert plan.worker_fault(1, 3, attempt=0) is None

    def test_times_lets_later_attempts_through(self):
        plan = FaultPlan().crash_worker(0, 1, times=2)
        assert plan.worker_fault(0, 1, attempt=0) is not None
        assert plan.worker_fault(0, 1, attempt=1) is not None
        assert plan.worker_fault(0, 1, attempt=2) is None

    def test_delay_fault_carries_seconds(self):
        plan = FaultPlan().delay_task(2, 3, seconds=1.25)
        fault = plan.worker_fault(2, 3)
        assert fault == WorkerFault("delay", 2, 3, 1, 1.25)

    def test_crash_random_worker_is_seeded(self):
        picked = FaultPlan(seed=5).crash_random_worker(4, 10)
        assert picked == FaultPlan(seed=5).crash_random_worker(4, 10)
        worker, superstep = picked
        assert 0 <= worker < 4
        assert 1 <= superstep <= 10

    def test_fire_delay_does_not_crash(self):
        # A zero-second delay exercises the fire path safely in-process.
        FaultPlan().delay_task(0, 1, seconds=0.0).fire_worker_fault(0, 1)

    def test_fire_without_matching_fault_is_a_no_op(self):
        FaultPlan().crash_worker(1, 1).fire_worker_fault(0, 99)

    def test_plan_survives_pickling(self):
        plan = FaultPlan(seed=3).crash_worker(1, 2).delay_task(0, 1, 0.5)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.worker_fault(1, 2) is not None
        assert clone.worker_fault(0, 1).seconds == 0.5


class TestCheckpointFaults:
    def test_crash_after_files_counts_writes(self):
        plan = FaultPlan().crash_after_files(2)
        plan.on_file_written("a")
        with pytest.raises(InjectedCrash, match="after writing 2"):
            plan.on_file_written("b")

    def test_no_crash_when_unscripted(self):
        plan = FaultPlan()
        for name in ("a", "b", "c", "d"):
            plan.on_file_written(name)

    def test_truncation_lookup(self):
        plan = FaultPlan().truncate_file("state.npz", keep_bytes=64)
        assert plan.truncation_for("state.npz") == 64
        assert plan.truncation_for("engine.json") is None

    def test_injected_crash_is_not_a_repro_error(self):
        # Production error handling (``except ReproError``) must never
        # swallow an injected crash, just as it cannot catch SIGKILL.
        assert not issubclass(InjectedCrash, ReproError)


class TestBatchFaults:
    def test_crash_batch_fires_on_scripted_batch_only(self):
        plan = FaultPlan().crash_batch(2)
        assert plan.batch_fault(2, attempt=0) is not None
        assert plan.batch_fault(1, attempt=0) is None
        assert plan.batch_fault(3, attempt=0) is None

    def test_times_lets_later_attempts_through(self):
        plan = FaultPlan().crash_batch(0, times=2)
        assert plan.batch_fault(0, attempt=0) is not None
        assert plan.batch_fault(0, attempt=1) is not None
        assert plan.batch_fault(0, attempt=2) is None

    def test_fire_batch_crash_raises_injected_crash(self):
        plan = FaultPlan().crash_batch(1)
        with pytest.raises(InjectedCrash, match="batch 1"):
            plan.fire_batch_crash(1, attempt=0)

    def test_fire_is_a_no_op_for_other_batches(self):
        FaultPlan().crash_batch(1).fire_batch_crash(0)

    def test_poison_batch_is_queried_not_raised(self):
        # "nan" faults corrupt the candidate ranking downstream; the
        # crash fire-path must ignore them.
        plan = FaultPlan().poison_batch(1)
        fault = plan.batch_fault(1)
        assert fault is not None
        assert fault.kind == "nan"
        plan.fire_batch_crash(1)  # no raise

    def test_crash_and_poison_coexist_on_distinct_batches(self):
        plan = FaultPlan().poison_batch(1).crash_batch(2)
        assert plan.batch_fault(1).kind == "nan"
        assert plan.batch_fault(2).kind == "crash"
        assert plan.batch_fault(0) is None

    def test_batch_faults_survive_pickling(self):
        plan = FaultPlan().crash_batch(3, times=2).poison_batch(5)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.batch_fault(3, attempt=1).kind == "crash"
        assert clone.batch_fault(5).kind == "nan"
