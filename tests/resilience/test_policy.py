"""RetryPolicy / Deadline policy object tests."""

import pickle

import pytest

from repro.errors import ConfigError
from repro.resilience import Deadline, RetryPolicy


class TestDeadline:
    def test_holds_seconds(self):
        assert Deadline(2.5).seconds == 2.5

    @pytest.mark.parametrize("seconds", [0, -1, -0.001])
    def test_rejects_non_positive(self, seconds):
        with pytest.raises(ConfigError, match="positive"):
            Deadline(seconds)

    def test_picklable(self):
        deadline = Deadline(1.5)
        assert pickle.loads(pickle.dumps(deadline)) == deadline


class TestRetryPolicyValidation:
    def test_defaults_are_valid(self):
        policy = RetryPolicy()
        assert policy.max_retries == 2

    def test_rejects_negative_retries(self):
        with pytest.raises(ConfigError, match="max_retries"):
            RetryPolicy(max_retries=-1)

    def test_rejects_negative_delays(self):
        with pytest.raises(ConfigError, match="non-negative"):
            RetryPolicy(base_delay=-0.1)

    def test_rejects_max_below_base(self):
        with pytest.raises(ConfigError, match="max_delay"):
            RetryPolicy(base_delay=1.0, max_delay=0.5)

    def test_rejects_negative_jitter(self):
        with pytest.raises(ConfigError, match="jitter"):
            RetryPolicy(jitter=-0.5)

    def test_zero_retries_allowed(self):
        # First failure degrades immediately; still a valid policy.
        assert RetryPolicy(max_retries=0).delays().exhausted


class TestRetryDelays:
    def test_exponential_backoff_without_jitter(self):
        delays = RetryPolicy(max_retries=5, base_delay=0.1, max_delay=10,
                             jitter=0.0).delays()
        assert delays.next_delay() == pytest.approx(0.1)
        assert delays.next_delay() == pytest.approx(0.2)
        assert delays.next_delay() == pytest.approx(0.4)

    def test_capped_at_max_delay(self):
        delays = RetryPolicy(max_retries=10, base_delay=1.0,
                             max_delay=1.5, jitter=0.0).delays()
        assert delays.next_delay() == pytest.approx(1.0)
        for _ in range(5):
            assert delays.next_delay() == pytest.approx(1.5)

    def test_jitter_widens_but_never_shrinks(self):
        policy = RetryPolicy(max_retries=20, base_delay=0.1,
                             max_delay=0.1, jitter=0.5, seed=3)
        delays = policy.delays()
        for _ in range(20):
            delay = delays.next_delay()
            assert 0.1 <= delay < 0.1 * 1.5

    def test_seeded_jitter_is_deterministic(self):
        policy = RetryPolicy(max_retries=3, seed=7)
        first, second = policy.delays(), policy.delays()
        assert [first.next_delay() for _ in range(3)] == \
            [second.next_delay() for _ in range(3)]

    def test_exhausted_after_max_retries(self):
        delays = RetryPolicy(max_retries=2, jitter=0.0).delays()
        assert not delays.exhausted
        delays.next_delay()
        assert not delays.exhausted
        delays.next_delay()
        assert delays.exhausted

    def test_fresh_sequences_are_independent(self):
        policy = RetryPolicy(max_retries=1)
        first = policy.delays()
        first.next_delay()
        assert first.exhausted
        assert not policy.delays().exhausted
