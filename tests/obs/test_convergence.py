"""ConvergenceStream unit tests + solver/engine stream wiring."""

import pytest

from repro.obs import SolverTelemetry
from repro.obs.convergence import ConvergenceStream

pytestmark = pytest.mark.obs


class TestStream:
    def test_records_are_indexed(self):
        stream = ConvergenceStream("pagerank")
        stream.record(0.5, delta=0.1, active=10, seconds=0.01)
        stream.record(0.05)
        assert len(stream) == 2
        assert [p.index for p in stream.points] == [0, 1]
        assert stream.residuals == [0.5, 0.05]
        assert stream.final_residual == 0.05
        assert stream.points[1].delta == 0.0

    def test_empty_stream_final_residual(self):
        assert ConvergenceStream("x").final_residual == float("inf")

    def test_dict_roundtrip(self):
        stream = ConvergenceStream("s", kind="superstep")
        stream.record(0.3, delta=0.2, active=4, seconds=0.5)
        rebuilt = ConvergenceStream.from_dict(stream.as_dict())
        assert rebuilt.as_dict() == stream.as_dict()
        assert rebuilt.kind == "superstep"

    def test_open_stream_is_get_or_create(self):
        telemetry = SolverTelemetry()
        first = telemetry.open_stream("s", kind="batch")
        assert telemetry.open_stream("s") is first
        assert first.kind == "batch"


class TestSolverWiring:
    """Each solver/engine appends to its named stream when telemetry
    is on — and the fixed point is unchanged (checked bit-identical in
    tests/obs/test_trace_parallel.py and the faults suite)."""

    def test_pagerank_stream(self, cyclic_graph):
        from repro.ranking.pagerank import pagerank

        telemetry = SolverTelemetry()
        pagerank(cyclic_graph.to_csr(), telemetry=telemetry)
        stream = telemetry.convergence["pagerank"]
        assert stream.kind == "iteration"
        assert len(stream) == telemetry.iterations > 0
        assert stream.residuals == telemetry.residuals

    def test_gauss_seidel_stream(self, cyclic_graph):
        from repro.ranking.gauss_seidel import gauss_seidel_pagerank

        telemetry = SolverTelemetry()
        gauss_seidel_pagerank(cyclic_graph.to_csr(), telemetry=telemetry)
        stream = telemetry.convergence["gauss_seidel"]
        assert len(stream) > 0
        # Residuals decay to below default tolerance.
        assert stream.final_residual < 1e-9
        assert all(p.seconds >= 0 for p in stream.points)

    def test_levels_stream(self, small_dataset):
        from repro.core.time_weight import exponential_decay
        from repro.core.twpr import time_weighted_pagerank

        graph = small_dataset.citation_csr()
        years = small_dataset.article_years(graph)
        telemetry = SolverTelemetry()
        time_weighted_pagerank(graph, years, exponential_decay(0.1),
                               method="levels", telemetry=telemetry)
        assert len(telemetry.convergence["twpr.levels"]) > 0

    def test_block_engine_superstep_stream(self, small_dataset):
        from repro.engine.blocks import BlockEngine
        from repro.graph.partition import range_partition

        graph = small_dataset.citation_csr()
        telemetry = SolverTelemetry()
        BlockEngine(graph, range_partition(graph, 4)).run(
            telemetry=telemetry)
        stream = telemetry.convergence["block_engine"]
        assert stream.kind == "superstep"
        assert len(stream) == telemetry.num_supersteps > 0
        assert stream.points[0].active > 0

    def test_incremental_batch_stream(self, small_dataset):
        from repro.engine.incremental import IncrementalEngine
        from repro.engine.updates import yearly_updates

        base, batches = yearly_updates(small_dataset, from_year=2012)
        telemetry = SolverTelemetry()
        engine = IncrementalEngine(base, telemetry=telemetry)
        engine.apply(batches[0])
        stream = telemetry.convergence["incremental"]
        assert stream.kind == "batch"
        assert len(stream) == 1
        assert stream.points[0].active >= 0
