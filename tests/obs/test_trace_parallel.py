"""The tentpole acceptance scenario: one trace across processes.

A traced ``ParallelBlockEngine`` run with >= 2 real worker processes
and one injected crash must produce a SINGLE trace containing the
coordinator's spans, every worker's solve spans (shipped back across
the process boundary), and the recovery spans — all with correct parent
links — while the fixed point stays bit-identical to an untraced run.
"""

import numpy as np
import pytest

from repro.obs import Observability, critical_path, render_trace
from repro.engine.parallel import ParallelBlockEngine
from repro.graph.partition import range_partition
from repro.resilience import FaultPlan, RetryPolicy

pytestmark = [pytest.mark.obs, pytest.mark.faults]

FAST_RETRIES = RetryPolicy(max_retries=2, base_delay=0.01,
                           max_delay=0.02, jitter=0.0)


@pytest.fixture(scope="module")
def graph_and_partition(small_dataset):
    graph = small_dataset.citation_csr()
    return graph, range_partition(graph, 4)


@pytest.fixture(scope="module")
def traced_crash_run(graph_and_partition):
    graph, partition = graph_and_partition
    baseline = ParallelBlockEngine(graph, partition, num_workers=2).run(
        tol=1e-10)
    obs = Observability("traced")
    engine = ParallelBlockEngine(
        graph, partition, num_workers=2,
        fault_plan=FaultPlan().crash_worker(1, superstep=2),
        retry_policy=FAST_RETRIES)
    result = engine.run(tol=1e-10, obs=obs)
    return baseline, result, obs


class TestSingleTraceAcrossProcesses:
    def test_converges_bit_identical_to_untraced(self, traced_crash_run):
        baseline, result, _ = traced_crash_run
        assert result.converged
        assert np.array_equal(result.scores, baseline.scores)

    def test_one_trace_id_covers_everything(self, traced_crash_run):
        _, _, obs = traced_crash_run
        spans = obs.tracer.export()
        assert len({span["trace_id"] for span in spans}) == 1
        names = {span["name"] for span in spans}
        assert {"parallel.run", "superstep", "worker.solve",
                "recovery.respawn"} <= names

    def test_parent_links_are_correct(self, traced_crash_run):
        _, _, obs = traced_crash_run
        spans = obs.tracer.export()
        by_id = {span["span_id"]: span for span in spans}
        [root] = [s for s in spans if s["name"] == "parallel.run"]
        assert root["parent_id"] is None
        for span in spans:
            if span["name"] == "superstep":
                assert by_id[span["parent_id"]]["name"] == "parallel.run"
            if span["name"] in ("worker.solve", "recovery.respawn"):
                # Worker spans crossed the process boundary and still
                # parent under the coordinator's open superstep span.
                assert by_id[span["parent_id"]]["name"] == "superstep"

    def test_worker_spans_cover_both_workers(self, traced_crash_run):
        _, _, obs = traced_crash_run
        solves = [s for s in obs.tracer.export()
                  if s["name"] == "worker.solve"]
        assert {s["attributes"]["worker"] for s in solves} == {0, 1}
        # The respawned worker re-ran superstep 2 as attempt 1.
        retried = [s for s in solves
                   if s["attributes"]["superstep"] == 2
                   and s["attributes"]["worker"] == 1]
        assert [s["attributes"]["attempt"] for s in retried] == [1]

    def test_failure_event_recorded_on_superstep(self, traced_crash_run):
        _, _, obs = traced_crash_run
        events = [(span["name"], event)
                  for span in obs.tracer.export()
                  for event in span.get("events", [])]
        [(owner, failure)] = [(name, e) for name, e in events
                              if e["name"] == "worker.failure"]
        assert owner == "superstep"
        assert failure["attributes"]["worker"] == 1
        assert failure["attributes"]["cause"] == "crash"

    def test_recovery_metrics_and_telemetry(self, traced_crash_run):
        _, _, obs = traced_crash_run
        failures = obs.metrics.counter(
            "repro_worker_failures_total", labels=("kind",))
        recoveries = obs.metrics.counter(
            "repro_recoveries_total", labels=("kind",))
        assert failures.value(kind="crash") == 1
        assert recoveries.value(kind="respawn") == 1
        kinds = [r.kind for r in obs.telemetry.recoveries]
        assert kinds == ["crash", "respawn"]

    def test_render_and_critical_path(self, traced_crash_run):
        _, _, obs = traced_crash_run
        spans = obs.tracer.export()
        text = render_trace(spans, title="acceptance")
        assert "* parallel.run" in text
        assert "recovery.respawn" in text
        assert "worker.failure" in text
        on_path = critical_path(spans)
        [root] = [s for s in spans if s["name"] == "parallel.run"]
        assert root["span_id"] in on_path

    def test_report_serializes_the_trace(self, traced_crash_run,
                                         tmp_path):
        from repro.obs import RunReport

        _, _, obs = traced_crash_run
        loaded = RunReport.load(
            obs.report().save(tmp_path / "trace.json"))
        assert len(loaded["spans"]) == len(obs.tracer.export())
        assert "repro_superstep_seconds" in loaded["metrics_registry"]


class TestDisabledOverhead:
    def test_disabled_obs_changes_nothing(self, graph_and_partition):
        graph, partition = graph_and_partition
        plain = ParallelBlockEngine(graph, partition,
                                    num_workers=2).run(tol=1e-10)
        again = ParallelBlockEngine(graph, partition, num_workers=2).run(
            tol=1e-10, telemetry=None, obs=None)
        assert np.array_equal(plain.scores, again.scores)
