"""SLO engine unit tests: spec validation, burn math, breach wiring.

Everything runs on an injectable fake clock — no sleeping. The burn
numbers are hand-computable: with objective 0.99 the error budget is
0.01, so a 10% error rate burns at 10, a 100% error rate at 100.
"""

import pytest

from repro.errors import ConfigError
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import FlightRecorder
from repro.obs.slo import (
    SLOMonitor,
    SLOSpec,
    default_slos,
    render_slo_table,
)

pytestmark = [pytest.mark.obs, pytest.mark.slo]


class FakeClock:
    def __init__(self, now: float = 1000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _ratio_spec(**overrides) -> SLOSpec:
    spec = dict(name="availability", kind="ratio", objective=0.99,
                metric="bad_total", total_metric="all_total",
                windows=(60.0, 300.0), burn_threshold=1.0)
    spec.update(overrides)
    return SLOSpec(**spec)


class TestSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError, match="kind"):
            SLOSpec(name="x", kind="percentile", metric="m")

    def test_objective_must_be_fraction(self):
        with pytest.raises(ConfigError, match="objective"):
            SLOSpec(name="x", kind="ratio", objective=1.0,
                    metric="m", total_metric="t")

    def test_gauge_max_ignores_objective_bound(self):
        # gauges are hard bounds; objective is not meaningful there.
        SLOSpec(name="x", kind="gauge_max", objective=1.0, metric="m")

    def test_metric_required(self):
        with pytest.raises(ConfigError, match="metric"):
            SLOSpec(name="x", kind="gauge_max")

    def test_ratio_needs_total(self):
        with pytest.raises(ConfigError, match="total_metric"):
            SLOSpec(name="x", kind="ratio", metric="m")

    def test_windows_positive(self):
        with pytest.raises(ConfigError, match="windows"):
            SLOSpec(name="x", kind="gauge_max", metric="m",
                    windows=(0.0, 60.0))

    def test_duplicate_names_rejected_by_monitor(self):
        specs = [_ratio_spec(), _ratio_spec()]
        with pytest.raises(ConfigError, match="duplicate"):
            SLOMonitor(MetricsRegistry(), specs=specs)

    def test_default_slos_construct(self):
        names = [spec.name for spec in default_slos()]
        assert "read-latency" in names
        assert "served-freshness" in names
        assert "gateway-degradation" in names


class TestBurnMath:
    def test_ratio_burn_rate_is_error_rate_over_budget(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        monitor = SLOMonitor(registry, specs=[_ratio_spec()],
                             clock=clock)
        monitor.tick()  # anchor sample, everything at zero
        clock.advance(400.0)  # both windows now reach the anchor
        registry.counter("all_total").inc(100)
        registry.counter("bad_total").inc(10)
        (status,) = monitor.tick()
        # 10% errors / 1% budget = burn 10 on both windows
        assert status.burn_rates[60.0] == pytest.approx(10.0)
        assert status.burn_rates[300.0] == pytest.approx(10.0)
        assert status.breaching
        assert status.events == 100

    def test_multi_window_and_semantics(self):
        # A burst that is hot over the short window but already diluted
        # over the long one must NOT page: both windows must burn.
        clock = FakeClock()
        registry = MetricsRegistry()
        monitor = SLOMonitor(registry, specs=[_ratio_spec()],
                             clock=clock)
        monitor.tick()  # long-window anchor (all zero)
        clock.advance(240.0)
        registry.counter("all_total").inc(50_000)  # clean history
        monitor.tick()  # short-window anchor (clean)
        clock.advance(70.0)
        registry.counter("all_total").inc(100)
        registry.counter("bad_total").inc(100)  # 100% errors, briefly
        (status,) = monitor.tick()
        assert status.burn_rates[60.0] >= 1.0  # short window is hot
        assert status.burn_rates[300.0] < 1.0  # long window diluted
        assert not status.breaching

    def test_min_events_keeps_cold_windows_quiet(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        monitor = SLOMonitor(
            registry, specs=[_ratio_spec(min_events=10)], clock=clock)
        monitor.tick()
        clock.advance(400.0)
        registry.counter("all_total").inc(3)
        registry.counter("bad_total").inc(3)  # 100% errors of 3 events
        (status,) = monitor.tick()
        assert status.burn_rates == {60.0: 0.0, 300.0: 0.0}
        assert not status.breaching

    def test_histogram_under_counts_threshold_bucket_as_good(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        spec = SLOSpec(name="latency", kind="histogram_under",
                       objective=0.9, metric="lat", threshold=0.1,
                       windows=(60.0, 300.0))
        monitor = SLOMonitor(registry, specs=[spec], clock=clock)
        monitor.tick()
        clock.advance(400.0)
        histogram = registry.histogram("lat", buckets=(0.1, 1.0))
        for _ in range(8):
            histogram.observe(0.1)   # exactly on the bound: good
        histogram.observe(0.5)
        histogram.observe(5.0)
        (status,) = monitor.tick()
        # 2 bad of 10 = 20% errors / 10% budget = burn 2
        assert status.burn_rates[60.0] == pytest.approx(2.0)
        assert status.breaching

    def test_gauge_max_burns_at_inf_when_violated(self):
        registry = MetricsRegistry()
        spec = SLOSpec(name="degraded", kind="gauge_max",
                       metric="degraded_shards", threshold=0.0)
        monitor = SLOMonitor(registry, specs=[spec], clock=FakeClock())
        registry.gauge("degraded_shards").set(0)
        (status,) = monitor.tick()
        assert not status.breaching
        registry.gauge("degraded_shards").set(2)
        (status,) = monitor.tick()
        assert status.breaching
        assert status.value == 2.0
        assert all(rate == float("inf")
                   for rate in status.burn_rates.values())

    def test_young_monitor_uses_oldest_anchor(self):
        # A run shorter than the window still detects a hot burn: the
        # anchor falls back to the oldest sample instead of staying
        # silent until the window fills.
        clock = FakeClock()
        registry = MetricsRegistry()
        monitor = SLOMonitor(registry, specs=[_ratio_spec()],
                             clock=clock)
        monitor.tick()
        clock.advance(5.0)  # far less than either window
        registry.counter("all_total").inc(100)
        registry.counter("bad_total").inc(50)
        (status,) = monitor.tick()
        assert status.breaching


class TestBreachWiring:
    def test_callbacks_fire_on_transition_only(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        monitor = SLOMonitor(registry, specs=[_ratio_spec()],
                             clock=clock)
        fired = []
        monitor.on_breach(lambda status: fired.append(status.name))
        monitor.tick()
        clock.advance(400.0)
        registry.counter("all_total").inc(100)
        registry.counter("bad_total").inc(100)
        monitor.tick()  # transition into breach
        monitor.tick()  # still breaching: no second notification
        assert fired == ["availability"]
        assert monitor.breaches_total == 1

    def test_breach_triggers_recorder_capture(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        recorder = FlightRecorder()
        monitor = SLOMonitor(registry, specs=[_ratio_spec()],
                             clock=clock, recorder=recorder)
        monitor.tick()
        clock.advance(400.0)
        registry.counter("all_total").inc(100)
        registry.counter("bad_total").inc(100)
        monitor.tick()
        assert len(recorder.captures) == 1
        bundle = recorder.captures[0]
        assert bundle.trigger == "slo:availability"
        assert bundle.slo and bundle.slo[0]["breaching"]

    def test_statuses_reflect_last_tick(self):
        registry = MetricsRegistry()
        monitor = SLOMonitor(registry, specs=[_ratio_spec()],
                             clock=FakeClock())
        assert monitor.statuses() == []
        monitor.tick()
        assert [s.name for s in monitor.statuses()] == ["availability"]


class TestRendering:
    def test_table_rows_and_breach_flag(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        specs = [_ratio_spec(),
                 SLOSpec(name="degraded", kind="gauge_max",
                         metric="g", threshold=0.0)]
        monitor = SLOMonitor(registry, specs=specs, clock=clock)
        registry.gauge("g").set(1)
        statuses = monitor.tick()
        text = render_slo_table(statuses)
        assert "availability" in text
        assert "degraded" in text and "BREACH" in text
        assert "val=1" in text

    def test_empty_table(self):
        assert "no SLOs" in render_slo_table([])

    def test_status_as_dict_is_json_shaped(self):
        registry = MetricsRegistry()
        monitor = SLOMonitor(registry, specs=[_ratio_spec()],
                             clock=FakeClock())
        (status,) = monitor.tick()
        payload = status.as_dict()
        assert payload["name"] == "availability"
        assert set(payload["burn_rates"]) == {"60.0", "300.0"}
