"""Observability handle tests: bundling, helpers, report export."""

from contextlib import nullcontext

import pytest

from repro.obs import (
    EventLog,
    Observability,
    SolverTelemetry,
    maybe_span,
    resolve_telemetry,
)

pytestmark = pytest.mark.obs


class TestHandle:
    def test_defaults_build_all_recorders(self):
        obs = Observability("run")
        assert obs.telemetry is not None
        assert obs.tracer is not None
        assert obs.metrics is not None
        assert obs.events is None

    def test_span_delegates_to_tracer(self):
        obs = Observability()
        with obs.span("step", index=1):
            pass
        [span] = obs.tracer.finished
        assert span.name == "step"
        assert span.attributes == {"index": 1}

    def test_event_lands_on_span_and_log(self, tmp_path):
        log_path = tmp_path / "events.jsonl"
        with Observability(events=EventLog(log_path)) as obs:
            with obs.span("s"):
                obs.event("worker.failure", worker=1, cause="crash")
        [span] = obs.tracer.finished
        assert span.events[0].name == "worker.failure"
        [record] = EventLog.read(log_path)
        assert record["kind"] == "worker.failure"
        assert record["cause"] == "crash"

    def test_report_bundles_spans_and_metrics(self):
        obs = Observability("bundled")
        with obs.span("root"):
            pass
        obs.metrics.counter("c").inc()
        obs.telemetry.record_iteration(0.5)
        payload = obs.report().to_dict()
        assert payload["name"] == "bundled"
        assert payload["spans"][0]["name"] == "root"
        assert payload["metrics_registry"]["c"]["values"][0]["value"] == 1
        assert payload["telemetry"]["residuals"] == [0.5]


class TestHelpers:
    def test_maybe_span_off_is_nullcontext(self):
        context = maybe_span(None, "anything")
        assert isinstance(context, nullcontext)

    def test_maybe_span_on_records(self):
        obs = Observability()
        with maybe_span(obs, "s", k="v"):
            pass
        assert obs.tracer.finished[0].attributes == {"k": "v"}

    def test_resolve_telemetry_precedence(self):
        explicit = SolverTelemetry()
        obs = Observability()
        assert resolve_telemetry(None, None) is None
        assert resolve_telemetry(None, explicit) is explicit
        assert resolve_telemetry(obs, None) is obs.telemetry
        # An explicit telemetry wins over the handle's.
        assert resolve_telemetry(obs, explicit) is explicit
