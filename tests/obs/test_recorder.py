"""Flight recorder unit tests: rings, auto-capture, bundle roundtrip."""

import json

import pytest

from repro.obs.handle import Observability
from repro.obs.recorder import FlightRecorder, IncidentBundle

pytestmark = [pytest.mark.obs, pytest.mark.slo]


class TestRings:
    def test_event_ring_is_bounded(self):
        recorder = FlightRecorder(max_events=5)
        obs = Observability("t", recorder=recorder)
        for index in range(20):
            obs.event("tick", index=index)
        bundle = recorder.capture("manual")
        assert len(bundle.events) == 5
        assert [r["index"] for r in bundle.events] == list(range(15, 20))

    def test_health_ring_is_bounded_and_timestamped(self):
        recorder = FlightRecorder(max_health=3)
        for index in range(10):
            recorder.record_health({"status": "fresh", "epoch": index},
                                   ts=float(index))
        bundle = recorder.capture("manual")
        assert len(bundle.health_timeline) == 3
        assert bundle.health_timeline[-1]["ts"] == 9.0
        assert bundle.health_timeline[-1]["health"]["epoch"] == 9

    def test_span_tail_is_bounded(self):
        recorder = FlightRecorder(max_spans=2)
        obs = Observability("t", recorder=recorder)
        for index in range(5):
            with obs.span("step", index=index):
                pass
        bundle = recorder.capture("manual")
        assert len(bundle.spans) == 2
        assert bundle.spans[-1]["attributes"]["index"] == 4


class TestAutoCapture:
    def test_armed_event_kind_triggers_capture(self):
        recorder = FlightRecorder(capture_on=("serve.breaker_trip",))
        obs = Observability("t", recorder=recorder)
        obs.event("serve.read", latency=0.01)  # not armed
        assert recorder.captures == []
        obs.event("serve.breaker_trip", reason="3 failures")
        assert len(recorder.captures) == 1
        bundle = recorder.captures[0]
        assert bundle.trigger == "event:serve.breaker_trip"
        assert bundle.events[-1]["kind"] == "serve.breaker_trip"

    def test_capture_includes_metrics_and_meta(self):
        recorder = FlightRecorder()
        obs = Observability("t", recorder=recorder)
        obs.metrics.counter("jobs_total").inc(3)
        bundle = recorder.capture("manual")
        assert bundle.metrics["jobs_total"]["values"][0]["value"] == 3.0
        assert "python" in bundle.meta

    def test_capture_never_recurses(self):
        # An armed event recorded while a capture is in flight (e.g.
        # emitted by code the capture itself calls) must not open a
        # second capture.
        recorder = FlightRecorder(capture_on=("boom",))
        obs = Observability("t", recorder=recorder)
        real_snapshot = obs.metrics.snapshot

        def noisy_snapshot():
            obs.event("boom")  # armed event while capture is in flight
            return real_snapshot()

        obs.metrics.snapshot = noisy_snapshot
        obs.event("boom")
        assert len(recorder.captures) == 1
        # the re-entrant event still landed in the ring
        assert [r["kind"] for r in recorder.captures[0].events] \
            == ["boom"]


class TestBundles:
    def test_save_load_roundtrip(self, tmp_path):
        recorder = FlightRecorder()
        obs = Observability("t", recorder=recorder)
        with obs.span("work"):
            obs.event("step", n=1)
        recorder.record_health({"status": "fresh"})
        bundle = recorder.capture(
            "manual",
            slo_statuses=[{"name": "availability", "breaching": True,
                           "kind": "ratio", "burn_rates": {"60.0": 5.0}}],
            quarantined=[{"batch": 3, "reason": "poison"}])
        path = bundle.save(tmp_path / "incident.json")
        loaded = IncidentBundle.load(path)
        assert loaded.trigger == "manual"
        assert loaded.events == bundle.events
        assert loaded.spans == bundle.spans
        assert loaded.slo == bundle.slo
        assert loaded.quarantined == bundle.quarantined
        # plain JSON with a schema marker, no custom types
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["schema"] == "repro.incident/1"

    def test_bundle_dir_uses_deterministic_names(self, tmp_path):
        recorder = FlightRecorder(bundle_dir=tmp_path / "incidents")
        Observability("t", recorder=recorder)
        recorder.capture("first")
        recorder.capture("second")
        names = [path.name for path in recorder.saved_paths]
        assert names == ["incident-001.json", "incident-002.json"]
        assert all(path.exists() for path in recorder.saved_paths)

    def test_render_summarises_triage_surface(self):
        bundle = IncidentBundle(
            trigger="slo:availability",
            slo=[{"name": "availability", "kind": "ratio",
                  "breaching": True, "burn_rates": {"60.0": 5.0}}],
            health_timeline=[{"ts": 1.0,
                              "health": {"status": "degraded"}}],
            quarantined=[{"batch": 1}],
            events=[{"kind": "serve.breaker_trip"}])
        text = bundle.render()
        assert "slo:availability" in text
        assert "BREACH availability" in text
        assert "degraded" in text
        assert "serve.breaker_trip" in text

    def test_len_counts_captures(self):
        recorder = FlightRecorder()
        assert len(recorder) == 0
        recorder.capture("one")
        assert len(recorder) == 1
