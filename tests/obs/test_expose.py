"""MetricsServer tests: Prometheus text over stdlib HTTP."""

from urllib.error import HTTPError
from urllib.request import urlopen

import pytest

from repro.obs.expose import MetricsServer
from repro.obs.metrics import MetricsRegistry

pytestmark = [pytest.mark.obs, pytest.mark.slo]


@pytest.fixture()
def registry():
    registry = MetricsRegistry()
    registry.counter("jobs_total", "Jobs processed.").inc(3)
    registry.gauge("depth", labels=("queue",)).set(2, queue="main")
    return registry


class TestMetricsServer:
    def test_serves_prometheus_text(self, registry):
        with MetricsServer(registry) as server:
            with urlopen(server.url) as response:
                assert response.status == 200
                assert response.headers["Content-Type"].startswith(
                    "text/plain")
                body = response.read().decode("utf-8")
        assert "# TYPE jobs_total counter" in body
        assert "jobs_total 3" in body
        assert 'depth{queue="main"} 2' in body

    def test_root_path_and_healthz(self, registry):
        with MetricsServer(registry) as server:
            base = f"http://{server.host}:{server.port}"
            assert server.url == f"{base}/metrics"
            with urlopen(f"{base}/") as response:
                assert response.status == 200
            with urlopen(f"{base}/healthz") as response:
                assert response.read() == b"ok\n"

    def test_unknown_path_404(self, registry):
        with MetricsServer(registry) as server:
            base = f"http://{server.host}:{server.port}"
            with pytest.raises(HTTPError) as excinfo:
                urlopen(f"{base}/nope")
            assert excinfo.value.code == 404

    def test_ephemeral_port_and_stop_idempotent(self, registry):
        server = MetricsServer(registry, port=0)
        server.start()
        assert server.port != 0
        server.stop()
        server.stop()  # second stop is a no-op

    def test_scrape_sees_live_updates(self, registry):
        with MetricsServer(registry) as server:
            registry.counter("jobs_total").inc(7)
            with urlopen(server.url) as response:
                body = response.read().decode("utf-8")
        assert "jobs_total 10" in body
