"""MetricsRegistry unit tests: instruments, validation, exposition."""

import json

import pytest

from repro.errors import ConfigError
from repro.obs.metrics import MetricsRegistry

pytestmark = pytest.mark.obs


class TestCounter:
    def test_inc_and_value(self):
        counter = MetricsRegistry().counter("jobs_total")
        counter.inc()
        counter.inc(2)
        assert counter.value() == 3.0

    def test_labelled_series_are_independent(self):
        counter = MetricsRegistry().counter(
            "failures_total", labels=("kind",))
        counter.inc(kind="crash")
        counter.inc(2, kind="timeout")
        assert counter.value(kind="crash") == 1.0
        assert counter.value(kind="timeout") == 2.0
        assert counter.value(kind="other") == 0.0

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ConfigError, match="increase"):
            counter.inc(-1)

    def test_wrong_labels_rejected(self):
        counter = MetricsRegistry().counter("c", labels=("kind",))
        with pytest.raises(ConfigError, match="labels"):
            counter.inc(worker=1)


class TestGauge:
    def test_set_inc(self):
        gauge = MetricsRegistry().gauge("workers")
        gauge.set(4)
        gauge.inc(-1)
        assert gauge.value() == 3.0


class TestHistogram:
    def test_observe_counts_and_sum(self):
        histogram = MetricsRegistry().histogram(
            "seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        assert histogram.count() == 3
        assert histogram.sum() == pytest.approx(5.55)

    def test_bad_buckets_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigError):
            registry.histogram("h1", buckets=())
        with pytest.raises(ConfigError):
            registry.histogram("h2", buckets=(2.0, 1.0))
        with pytest.raises(ConfigError):
            registry.histogram("h3", buckets=(1.0, float("inf")))

    def test_bucket_bound_is_inclusive_upper(self):
        # Prometheus `le` semantics: an observation exactly on a bound
        # lands in that bucket, deterministically, never the next one.
        histogram = MetricsRegistry().histogram(
            "edge", buckets=(0.1, 1.0))
        histogram.observe(0.1)
        histogram.observe(1.0)
        snap = histogram.snapshot()["values"][0]
        assert snap["counts"] == [1, 1, 0]

    def test_nan_and_infinities_land_deterministically(self):
        histogram = MetricsRegistry().histogram(
            "weird", buckets=(0.1, 1.0))
        histogram.observe(float("nan"))   # compares false -> overflow
        histogram.observe(float("inf"))   # above every bound -> overflow
        histogram.observe(float("-inf"))  # below everything -> first
        snap = histogram.snapshot()["values"][0]
        assert snap["counts"] == [1, 0, 2]
        assert snap["count"] == 3

    def test_exposition_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        text = registry.to_prometheus()
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="1"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_count 3" in text


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert len(registry) == 1

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ConfigError, match="already registered"):
            registry.gauge("x")

    def test_label_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x", labels=("a",))
        with pytest.raises(ConfigError, match="labels"):
            registry.counter("x", labels=("b",))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigError, match="metric name"):
            registry.counter("2bad")
        with pytest.raises(ConfigError, match="label name"):
            registry.counter("ok", labels=("bad-label",))

    def test_snapshot_json_roundtrip(self):
        registry = MetricsRegistry()
        registry.counter("c", "help text", labels=("k",)).inc(k="v")
        registry.gauge("g").set(1.5)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        parsed = json.loads(registry.to_json())
        assert parsed["c"]["values"] == [
            {"labels": {"k": "v"}, "value": 1.0}]
        assert parsed["g"]["kind"] == "gauge"
        assert parsed["h"]["buckets"] == [1.0]

    def test_prometheus_help_and_type_lines(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total", "Jobs processed.").inc()
        text = registry.to_prometheus()
        assert "# HELP jobs_total Jobs processed." in text
        assert "# TYPE jobs_total counter" in text
        assert "jobs_total 1" in text
        assert text.endswith("\n")

    def test_empty_registry_exposes_nothing(self):
        assert MetricsRegistry().to_prometheus() == ""

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", labels=("k",)).inc(
            k='quo"te\\slash\nnewline')
        text = registry.to_prometheus()
        assert r'c{k="quo\"te\\slash\nnewline"} 1' in text
        # the exposition stays one-record-per-line
        lines = [ln for ln in text.splitlines() if ln.startswith("c{")]
        assert len(lines) == 1
