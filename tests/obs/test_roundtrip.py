"""Serialization round-trips: telemetry records, report versioning."""

import json

import pytest

from repro.errors import StorageError
from repro.obs import RunReport, SolverTelemetry
from repro.obs.telemetry import RecoveryRecord

pytestmark = pytest.mark.obs


def _full_telemetry() -> SolverTelemetry:
    telemetry = SolverTelemetry("parallel")
    telemetry.record_iteration(0.5, dangling_mass=0.1)
    telemetry.record_iteration(0.05)
    telemetry.record_superstep(0.01, messages=12, residual=0.3,
                               local_iterations=5,
                               block_iterations={0: 3, 1: 2})
    telemetry.record_batch(affected_nodes=10, affected_fraction=0.1,
                           seeds=3, iterations=7, residual=1e-9,
                           seconds=0.02, num_nodes=100, num_edges=400)
    telemetry.record_recovery(superstep=2, worker=1, kind="crash",
                              attempt=0, blocks=[1, 3])
    telemetry.record_recovery(superstep=2, worker=1, kind="respawn",
                              attempt=1)
    telemetry.record_worker(0, [0, 2])
    telemetry.record_bytes(1024)
    telemetry.incr("sweeps", 3)
    telemetry.timings.add("solve", 0.5)
    telemetry.open_stream("pagerank").record(0.5, delta=0.2, active=9,
                                             seconds=0.001)
    return telemetry


class TestTelemetryRoundtrip:
    def test_as_dict_from_dict_is_fixed_point(self):
        first = _full_telemetry().as_dict()
        second = SolverTelemetry.from_dict(first).as_dict()
        assert second == first

    def test_survives_json(self):
        payload = json.loads(json.dumps(_full_telemetry().as_dict()))
        rebuilt = SolverTelemetry.from_dict(payload)
        assert rebuilt.worker_blocks == {0: [0, 2]}  # keys back to int
        assert rebuilt.supersteps[0].block_iterations == {0: 3, 1: 2}
        assert rebuilt.convergence["pagerank"].residuals == [0.5]

    def test_recovery_records_roundtrip(self):
        rebuilt = SolverTelemetry.from_dict(_full_telemetry().as_dict())
        crash, respawn = rebuilt.recoveries
        assert isinstance(crash, RecoveryRecord)
        assert (crash.kind, crash.worker, crash.superstep) == \
            ("crash", 1, 2)
        assert crash.blocks == [1, 3]
        assert (respawn.kind, respawn.attempt) == ("respawn", 1)
        # The aggregate counters round-trip too.
        assert rebuilt.counters["resilience.crashes"] == 1.0
        assert rebuilt.counters["resilience.respawns"] == 1.0

    def test_recovery_record_defaults(self):
        record = RecoveryRecord.from_dict(
            {"index": 0, "superstep": 1, "worker": 2, "kind": "timeout"})
        assert record.attempt == 0
        assert record.blocks == []


class TestReportVersioning:
    def test_v1_file_loads_under_v2_reader(self, tmp_path):
        # A v1 artifact has no spans/metrics_registry/git_sha sections.
        v1 = {
            "format_version": 1,
            "name": "bench",
            "meta": {"host": "x", "python": "3.9.0",
                     "time": "2025-01-01T00:00:00"},
            "timings": {"solve": 0.5},
            "telemetry": {"solver": "power", "iterations": 1,
                          "residuals": [0.1]},
            "metrics": {"num_articles": 10},
        }
        path = tmp_path / "v1.json"
        path.write_text(json.dumps(v1), encoding="utf-8")
        loaded = RunReport.load(path)
        assert loaded["format_version"] == 1
        assert loaded.get("spans", []) == []
        telemetry = SolverTelemetry.from_dict(loaded["telemetry"])
        assert telemetry.residuals == [0.1]
        assert telemetry.convergence == {}

    def test_missing_version_treated_as_v1(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"name": "x"}), encoding="utf-8")
        assert RunReport.load(path)["name"] == "x"

    def test_future_version_rejected(self, tmp_path):
        path = tmp_path / "vN.json"
        path.write_text(json.dumps({"format_version": 99, "name": "x"}),
                        encoding="utf-8")
        with pytest.raises(StorageError, match="format_version 99"):
            RunReport.load(path)

    def test_v2_sections_roundtrip(self, tmp_path):
        report = RunReport("run", telemetry=_full_telemetry())
        report.spans = [{"trace_id": "t", "span_id": "s",
                         "parent_id": None, "name": "root",
                         "start": 0.0, "duration": 1.0, "status": "ok"}]
        report.metrics_registry = {"c": {"kind": "counter", "help": "",
                                         "labels": [], "values": []}}
        loaded = RunReport.load(report.save(tmp_path / "v2.json"))
        assert loaded["format_version"] == 2
        assert loaded["spans"][0]["name"] == "root"
        assert loaded["metrics_registry"]["c"]["kind"] == "counter"
        assert loaded["meta"]["git_sha"]
        assert loaded["telemetry"]["convergence"][0]["name"] == "pagerank"
