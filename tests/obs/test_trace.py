"""Span tracer unit tests: nesting, propagation, critical path."""

import pickle

import pytest

from repro.obs.trace import (
    Span,
    TraceContext,
    Tracer,
    critical_path,
    render_trace,
)

pytestmark = pytest.mark.obs


class TestSpans:
    def test_nesting_links_parents(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert inner.trace_id == outer.trace_id == tracer.trace_id
        # inner finished first, so it exports first.
        assert [s.name for s in tracer.finished] == ["outer", "inner"] \
            or [s.name for s in tracer.finished] == ["inner", "outer"]

    def test_siblings_share_parent(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == b.parent_id
        assert a.span_id != b.span_id

    def test_exception_marks_error_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        [span] = tracer.finished
        assert span.status == "error"
        [event] = span.events
        assert event.name == "exception"
        assert event.attributes["type"] == "RuntimeError"
        # The stack unwound: a later span is a root again.
        with tracer.span("after") as after:
            pass
        assert after.parent_id is None

    def test_event_lands_on_open_span(self):
        tracer = Tracer()
        with tracer.span("s"):
            tracer.event("checkpoint", batch=3)
        [span] = tracer.finished
        assert span.events[0].name == "checkpoint"
        assert span.events[0].attributes == {"batch": 3}
        assert span.events[0].offset >= 0

    def test_event_without_open_span_is_noop(self):
        assert Tracer().event("orphan") is None

    def test_duration_and_end(self):
        tracer = Tracer()
        with tracer.span("s") as span:
            pass
        assert span.duration >= 0
        assert span.end == pytest.approx(span.start + span.duration)

    def test_dict_roundtrip(self):
        tracer = Tracer()
        with tracer.span("s", worker=1):
            tracer.event("e", k="v")
        [exported] = tracer.export()
        rebuilt = Span.from_dict(exported)
        assert rebuilt.as_dict() == exported


class TestPropagation:
    def test_context_is_picklable(self):
        ctx = TraceContext("t" * 16, "s" * 16)
        assert pickle.loads(pickle.dumps(ctx)) == ctx

    def test_worker_spans_join_coordinator_trace(self):
        coordinator = Tracer()
        with coordinator.span("parallel.run"):
            with coordinator.span("superstep") as step:
                ctx = coordinator.current_context()
                # ...what a worker process does on the other side:
                worker = Tracer(parent=ctx)
                with worker.span("worker.solve", worker=0):
                    pass
                shipped = worker.export()
            coordinator.adopt(shipped)
        spans = {s.name: s for s in coordinator.finished}
        assert spans["worker.solve"].trace_id == coordinator.trace_id
        assert spans["worker.solve"].parent_id == step.span_id

    def test_current_context_outside_spans_is_parent(self):
        ctx = TraceContext("a" * 16, "b" * 16)
        assert Tracer(parent=ctx).current_context() == ctx
        assert Tracer().current_context() is None

    def test_mismatched_parent_trace_rejected(self):
        ctx = TraceContext("a" * 16, "b" * 16)
        with pytest.raises(ValueError, match="different trace"):
            Tracer(trace_id="c" * 16, parent=ctx)


def _span(name, span_id, parent_id, start, duration):
    return Span(trace_id="t", span_id=span_id, parent_id=parent_id,
                name=name, start=start, duration=duration)


class TestCriticalPath:
    def test_sequential_children_all_on_path(self):
        spans = [_span("root", "r", None, 0.0, 3.0),
                 _span("a", "a", "r", 0.0, 1.0),
                 _span("b", "b", "r", 1.0, 2.0)]
        assert critical_path(spans) == {"r", "a", "b"}

    def test_parallel_children_only_gating_one(self):
        # a and b overlap entirely; b finishes last, so only b gated.
        spans = [_span("root", "r", None, 0.0, 2.0),
                 _span("a", "a", "r", 0.0, 1.0),
                 _span("b", "b", "r", 0.0, 2.0)]
        assert critical_path(spans) == {"r", "b"}

    def test_render_marks_path_and_events(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child", worker=2):
                tracer.event("note", detail="x")
        text = render_trace(tracer.export(), title="demo")
        assert "# demo" in text
        assert "* root" in text
        assert "child" in text and "{worker=2}" in text
        assert "· note" in text and "detail=x" in text

    def test_render_empty(self):
        assert "no spans" in render_trace([], title="t")

    def test_orphaned_spans_render_instead_of_crashing(self):
        # A worker that dies mid-span exports children whose parent
        # never finished: the parent id is missing from the span set.
        # Such spans must be promoted to roots and flagged, and the
        # whole tree must still render.
        spans = [
            _span("survivor", "s", None, 0.0, 1.0),
            _span("worker.solve", "w1", "never-finished", 0.2, 0.5),
            _span("worker.retry", "w2", "w1", 0.3, 0.2),
        ]
        spans[1].status = "error"
        text = render_trace(spans, title="crashed")
        assert "worker.solve" in text
        assert "(orphaned)" in text
        assert "[error]" in text
        # the orphan's own child still nests under it, un-flagged
        solve_line = next(ln for ln in text.splitlines()
                          if "worker.solve" in ln)
        retry_line = next(ln for ln in text.splitlines()
                          if "worker.retry" in ln)
        assert "(orphaned)" not in retry_line
        assert solve_line.index("worker.solve") \
            < retry_line.index("worker.retry")

    def test_crashed_traced_worker_exports_orphans(self):
        # End-to-end through the Tracer: an inner span is exported
        # while its parent is still open (the "crash" cut the run
        # short), so only the child lands in finished.
        tracer = Tracer()
        try:
            with tracer.span("doomed-parent"):
                with tracer.span("child"):
                    pass
                exported = tracer.export()  # parent not finished yet
                raise RuntimeError("worker killed")
        except RuntimeError:
            pass
        assert [s["name"] for s in exported] == ["child"]
        text = render_trace(exported, title="mid-crash export")
        assert "child" in text and "(orphaned)" in text
