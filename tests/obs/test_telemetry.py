"""SolverTelemetry unit tests."""

import json

import pytest

from repro.obs.telemetry import SolverTelemetry


class TestRecording:
    def test_iterations(self):
        telemetry = SolverTelemetry("power")
        telemetry.record_iteration(0.5, dangling_mass=0.1)
        telemetry.record_iteration(0.05, dangling_mass=0.09)
        assert telemetry.iterations == 2
        assert telemetry.residuals == [0.5, 0.05]
        assert telemetry.dangling_mass == pytest.approx([0.1, 0.09])

    def test_supersteps_indexed_and_summed(self):
        telemetry = SolverTelemetry()
        telemetry.record_superstep(0.01, messages=12, residual=0.3,
                                   local_iterations=5,
                                   block_iterations={0: 3, 1: 2})
        telemetry.record_superstep(0.02, messages=8, residual=0.01)
        assert telemetry.num_supersteps == 2
        assert [r.index for r in telemetry.supersteps] == [0, 1]
        assert telemetry.total_messages == 20
        assert telemetry.supersteps[0].block_iterations == {0: 3, 1: 2}

    def test_batches_indexed(self):
        telemetry = SolverTelemetry()
        telemetry.record_batch(affected_nodes=10, affected_fraction=0.1,
                               seeds=3, iterations=7, residual=1e-9,
                               seconds=0.02, num_nodes=100, num_edges=400)
        record = telemetry.batches[0]
        assert record.index == 0
        assert record.affected_nodes == 10
        assert record.num_edges == 400

    def test_workers_and_bytes(self):
        telemetry = SolverTelemetry()
        telemetry.record_worker(0, [0, 2])
        telemetry.record_worker(1, [1, 3])
        telemetry.record_bytes(1000)
        telemetry.record_bytes(24)
        assert telemetry.worker_blocks == {0: [0, 2], 1: [1, 3]}
        assert telemetry.bytes_shipped == 1024

    def test_counters(self):
        telemetry = SolverTelemetry()
        telemetry.incr("sweeps")
        telemetry.incr("sweeps", 2)
        telemetry.set_counter("levels", 13)
        assert telemetry.counters == {"sweeps": 3.0, "levels": 13.0}


class TestAsDict:
    def test_empty_sections_omitted(self):
        payload = SolverTelemetry("levels").as_dict()
        assert payload == {"solver": "levels", "iterations": 0,
                           "residuals": []}

    def test_full_payload_is_json_serializable(self):
        telemetry = SolverTelemetry("parallel")
        telemetry.record_iteration(0.1, dangling_mass=0.02)
        telemetry.record_superstep(0.01, messages=5, residual=0.1,
                                   block_iterations={7: 4})
        telemetry.record_batch(affected_nodes=1, affected_fraction=0.01,
                               seeds=1, iterations=2, residual=1e-10,
                               seconds=0.001, num_nodes=10, num_edges=20)
        telemetry.record_worker(0, [7])
        telemetry.record_bytes(512)
        telemetry.incr("restarts")
        with telemetry.timings.stage("solve"):
            pass
        payload = telemetry.as_dict()
        text = json.dumps(payload)  # must not raise
        parsed = json.loads(text)
        assert parsed["total_messages"] == 5
        assert parsed["supersteps"][0]["block_iterations"] == {"7": 4}
        assert parsed["worker_blocks"] == {"0": [7]}
        assert parsed["bytes_shipped"] == 512
        assert "solve" in parsed["timings"]
