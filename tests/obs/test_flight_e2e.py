"""End-to-end flight-recorder acceptance: one trace, record to served.

The tentpole claim of the observability layer is that a single trace
covers the whole data path — pull → parse → apply → publish → shard
refresh → read — and that when something breaks mid-run, the SLO
monitor breaches and the flight recorder freezes a bundle that renders
offline. This suite wires the real components together (no mocks):

* an :class:`IngestPipeline` whose ``sink`` is a sharded
  :class:`ShardedGateway` wrapping the *same* :class:`LiveRanker`,
* a :class:`FaultPlan` that kills one shard at board epoch 1,
* an :class:`SLOMonitor` + :class:`FlightRecorder` pair,

and then checks the acceptance criteria directly, including that the
final fixed point is bit-identical with observability on or off.
"""

import pytest

from repro.core.model import ArticleRanker, RankerConfig
from repro.data.generator import GeneratorConfig, generate_dataset
from repro.engine.live import LiveRanker
from repro.ingest.coalescer import Coalescer
from repro.ingest.journal import IngestJournal
from repro.ingest.pipeline import IngestPipeline
from repro.ingest.source import SyntheticSource
from repro.obs import FlightRecorder, Observability, SLOMonitor
from repro.obs.metrics import FRESHNESS_METRIC
from repro.resilience.faults import FaultPlan
from repro.serve.gateway import ShardedGateway

pytestmark = [pytest.mark.obs, pytest.mark.slo, pytest.mark.serve]

CRASHED_SHARD = 1

#: span names the single record-to-served trace must cross.
EXPECTED_SPANS = {
    "ingest.run", "ingest.batch",       # pipeline
    "incremental.apply",                # engine
    "serve.publish",                    # service guardrailed swap
    "gateway.publish", "gateway.refresh",  # board + shard scatter
    "gateway.read",                     # scatter-gather read
}


class FakeWall:
    """Deterministic wall clock: +5 ms per look."""

    def __init__(self, start: float = 1_000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        self.now += 0.005
        return self.now


def _dataset():
    return generate_dataset(GeneratorConfig(
        num_articles=80, num_venues=5, num_authors=30,
        start_year=2000, end_year=2012, seed=7))


def _run_chaos(tmp_path, obs, wall=None):
    """records → pipeline → gateway(sink) with shard 1 crash-faulted.

    Returns ``(gateway_top_entries, final_dataset, health)`` after the
    run; the gateway is closed before returning.
    """
    dataset = _dataset()
    plan = FaultPlan(seed=0)
    plan.crash_shard(CRASHED_SHARD, epoch=1)
    live = LiveRanker(dataset, obs=obs)
    source = SyntheticSource(sorted(dataset.articles), 36, seed=3,
                             cite_every=5)
    kwargs = {} if wall is None else {"wall_clock": wall}
    with ShardedGateway(live, 2, mode="inline", obs=obs,
                        fault_plan=plan, auto_respawn=False,
                        trace_reads=obs is not None) as gateway:
        pipeline = IngestPipeline(
            live, source, IngestJournal(tmp_path / "journal"),
            coalescer=Coalescer(min_batch=8, max_batch=16),
            sink=gateway, obs=obs, **kwargs)
        pipeline.run()
        top = gateway.top_sync(10).entries
        health = gateway.health()
        return top, live.dataset, health


class TestFlightRecorderEndToEnd:
    @pytest.fixture()
    def flight(self, tmp_path):
        recorder = FlightRecorder(bundle_dir=tmp_path / "incidents")
        obs = Observability("flight-e2e", recorder=recorder)
        wall = FakeWall()
        top, dataset, health = _run_chaos(tmp_path, obs, wall=wall)
        monitor = SLOMonitor(obs.metrics, recorder=recorder)
        recorder.record_health(health)
        statuses = monitor.tick()
        return dict(obs=obs, recorder=recorder, monitor=monitor,
                    top=top, dataset=dataset, health=health,
                    statuses=statuses)

    def test_one_trace_covers_record_to_served(self, flight):
        spans = flight["obs"].tracer.export()
        trace_ids = {span["trace_id"] for span in spans}
        assert len(trace_ids) == 1
        names = {span["name"] for span in spans}
        assert EXPECTED_SPANS <= names
        # the read span really nests under the one trace, and the
        # ingest root exists exactly once
        roots = [s for s in spans if s["parent_id"] is None]
        assert [s["name"] for s in roots].count("ingest.run") == 1

    def test_batches_carry_provenance_trace_id(self, flight):
        # the trace id stamped on batch provenance matches the tracer's
        trace_id = flight["obs"].tracer.trace_id
        batch_spans = [s for s in flight["obs"].tracer.export()
                       if s["name"] == "ingest.batch"]
        assert batch_spans
        assert all(s["trace_id"] == trace_id for s in batch_spans)

    def test_served_freshness_histogram_populated(self, flight):
        snapshot = flight["obs"].metrics.snapshot()
        fresh = snapshot[FRESHNESS_METRIC]
        stages = {entry["labels"]["stage"]: entry["count"]
                  for entry in fresh["values"]}
        # sink path: batches that published observe stage="served"
        assert stages.get("served", 0) > 0
        # stage="served" is measured entirely on the injected wall
        # clock (+5 ms per look), so every observation is tiny and the
        # run is deterministic
        served = next(entry for entry in fresh["values"]
                      if entry["labels"]["stage"] == "served")
        assert served["sum"] < 5.0

    def test_shard_fault_breaches_slo_and_captures_bundle(self, flight):
        health = flight["health"]
        assert list(health["degraded_shards"]) == [CRASHED_SHARD]
        breaching = {s.name for s in flight["statuses"] if s.breaching}
        assert "gateway-degradation" in breaching
        recorder = flight["recorder"]
        assert len(recorder.captures) >= 1
        bundle = recorder.captures[-1]
        assert bundle.trigger == "slo:gateway-degradation"
        assert bundle.slo and any(s["breaching"] for s in bundle.slo)
        # the bundle is self-contained: spans + health made it in
        assert {s["name"] for s in bundle.spans} & EXPECTED_SPANS
        assert bundle.health_timeline[-1]["health"]["degraded_shards"] \
            == [CRASHED_SHARD]
        assert recorder.saved_paths and recorder.saved_paths[0].exists()

    def test_bundle_renders_offline_via_cli(self, flight, capsys):
        from repro.cli import main

        path = flight["recorder"].saved_paths[0]
        assert main(["trace", "--bundle", str(path)]) == 0
        out = capsys.readouterr().out
        assert "incident: slo:gateway-degradation" in out
        assert "ingest.run" in out and "gateway.refresh" in out

        assert main(["watch", "--bundle", str(path)]) == 0
        out = capsys.readouterr().out
        assert "gateway-degradation" in out and "BREACH" in out

    def test_fixed_point_bit_identical_with_obs_off(self, flight,
                                                    tmp_path):
        top_off, dataset_off, _ = _run_chaos(tmp_path / "off", None)
        assert flight["top"] == top_off
        ranking_on = ArticleRanker(RankerConfig()).rank(
            flight["dataset"])
        ranking_off = ArticleRanker(RankerConfig()).rank(dataset_off)
        assert ranking_on.by_id() == ranking_off.by_id()
