"""EventLog (JSONL sink with shift rotation) unit tests."""

import threading

import pytest

from repro.obs.events import EventLog

pytestmark = pytest.mark.obs


class TestEmit:
    def test_lines_are_json_records(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            log.emit("start", run="r1")
            log.emit("stop", code=0)
        records = EventLog.read(path)
        assert [r["kind"] for r in records] == ["start", "stop"]
        assert records[0]["run"] == "r1"
        assert records[1]["code"] == 0
        assert all("ts" in r for r in records)
        assert log.emitted == 2

    def test_flushes_per_line(self, tmp_path):
        # A crash (no close) loses at most the line being written.
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        log.emit("durable")
        assert EventLog.read(path)[0]["kind"] == "durable"
        log.close()

    def test_emit_after_close_rejected(self, tmp_path):
        log = EventLog(tmp_path / "e.jsonl")
        log.close()
        with pytest.raises(ValueError, match="closed"):
            log.emit("late")

    def test_nonserializable_fields_stringified(self, tmp_path):
        path = tmp_path / "e.jsonl"
        with EventLog(path) as log:
            log.emit("odd", where=path)  # Path is not JSON-native
        assert EventLog.read(path)[0]["where"] == str(path)


class TestRotation:
    def test_shift_rotation_keeps_backups(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path, max_bytes=200, backups=2) as log:
            for index in range(50):
                log.emit("tick", index=index)
        assert path.exists()
        assert path.with_name("events.jsonl.1").exists()
        assert path.with_name("events.jsonl.2").exists()
        assert not path.with_name("events.jsonl.3").exists()
        # Newest records live in the active file, older in .1, etc.
        newest = EventLog.read(path)
        older = EventLog.read(path.with_name("events.jsonl.1"))
        assert newest[-1]["index"] == 49
        assert older[-1]["index"] < newest[0]["index"]

    def test_zero_backups_truncates(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path, max_bytes=120, backups=0) as log:
            for index in range(20):
                log.emit("tick", index=index)
        assert not path.with_name("events.jsonl.1").exists()
        assert path.stat().st_size <= 120

    def test_bad_configuration_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            EventLog(tmp_path / "e.jsonl", max_bytes=0)
        with pytest.raises(ValueError):
            EventLog(tmp_path / "e.jsonl", backups=-1)

    def test_concurrent_writers_rotate_without_loss(self, tmp_path):
        # Rotation must be atomic under concurrent emitters: every
        # record lands in exactly one generation, none torn, none
        # double-written. max_bytes is tiny so the writers force many
        # shifts while racing each other.
        path = tmp_path / "events.jsonl"
        writers, per_writer = 4, 50
        barrier = threading.Barrier(writers)

        with EventLog(path, max_bytes=400, backups=50) as log:
            def _writer(worker: int) -> None:
                barrier.wait()
                for index in range(per_writer):
                    log.emit("tick", worker=worker, index=index)

            threads = [threading.Thread(target=_writer, args=(w,))
                       for w in range(writers)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert log.emitted == writers * per_writer

        records = []
        for candidate in [path] + [path.with_name(f"events.jsonl.{i}")
                                   for i in range(1, 51)]:
            if candidate.exists():
                records.extend(EventLog.read(candidate))
        seen = {(r["worker"], r["index"]) for r in records}
        assert len(records) == len(seen)  # no duplicates, no torn lines
        # Bounded retention may drop the *oldest* shifts; whatever
        # survived must be complete per (worker, index) key.
        assert seen <= {(w, i) for w in range(writers)
                        for i in range(per_writer)}
        assert len(seen) == writers * per_writer
