"""EventLog (JSONL sink with shift rotation) unit tests."""

import pytest

from repro.obs.events import EventLog

pytestmark = pytest.mark.obs


class TestEmit:
    def test_lines_are_json_records(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            log.emit("start", run="r1")
            log.emit("stop", code=0)
        records = EventLog.read(path)
        assert [r["kind"] for r in records] == ["start", "stop"]
        assert records[0]["run"] == "r1"
        assert records[1]["code"] == 0
        assert all("ts" in r for r in records)
        assert log.emitted == 2

    def test_flushes_per_line(self, tmp_path):
        # A crash (no close) loses at most the line being written.
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        log.emit("durable")
        assert EventLog.read(path)[0]["kind"] == "durable"
        log.close()

    def test_emit_after_close_rejected(self, tmp_path):
        log = EventLog(tmp_path / "e.jsonl")
        log.close()
        with pytest.raises(ValueError, match="closed"):
            log.emit("late")

    def test_nonserializable_fields_stringified(self, tmp_path):
        path = tmp_path / "e.jsonl"
        with EventLog(path) as log:
            log.emit("odd", where=path)  # Path is not JSON-native
        assert EventLog.read(path)[0]["where"] == str(path)


class TestRotation:
    def test_shift_rotation_keeps_backups(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path, max_bytes=200, backups=2) as log:
            for index in range(50):
                log.emit("tick", index=index)
        assert path.exists()
        assert path.with_name("events.jsonl.1").exists()
        assert path.with_name("events.jsonl.2").exists()
        assert not path.with_name("events.jsonl.3").exists()
        # Newest records live in the active file, older in .1, etc.
        newest = EventLog.read(path)
        older = EventLog.read(path.with_name("events.jsonl.1"))
        assert newest[-1]["index"] == 49
        assert older[-1]["index"] < newest[0]["index"]

    def test_zero_backups_truncates(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path, max_bytes=120, backups=0) as log:
            for index in range(20):
                log.emit("tick", index=index)
        assert not path.with_name("events.jsonl.1").exists()
        assert path.stat().st_size <= 120

    def test_bad_configuration_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            EventLog(tmp_path / "e.jsonl", max_bytes=0)
        with pytest.raises(ValueError):
            EventLog(tmp_path / "e.jsonl", backups=-1)
