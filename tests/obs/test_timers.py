"""Timer / StageTimings unit tests."""

import time

import pytest

from repro.obs.timers import StageTimings, Timer


class TestTimer:
    def test_context_manager_measures(self):
        with Timer("t") as timer:
            assert timer.running
            time.sleep(0.01)
        assert not timer.running
        assert timer.seconds >= 0.01

    def test_stop_is_idempotent(self):
        timer = Timer().start()
        first = timer.stop()
        time.sleep(0.005)
        assert timer.stop() == first

    def test_restart_accumulates(self):
        # Regression: stop → start → stop must ADD the second segment,
        # never silently discard the first one.
        timer = Timer().start()
        time.sleep(0.005)
        first = timer.stop()
        assert first > 0
        timer.start()
        time.sleep(0.005)
        assert timer.stop() >= first + 0.005

    def test_start_while_running_is_noop(self):
        timer = Timer().start()
        time.sleep(0.005)
        timer.start()  # must not reset the in-flight segment
        assert timer.stop() >= 0.005

    def test_reset_zeroes(self):
        timer = Timer().start()
        timer.stop()
        timer.reset()
        assert timer.seconds == 0.0
        assert not timer.running

    def test_elapsed_while_running(self):
        timer = Timer().start()
        time.sleep(0.005)
        assert timer.elapsed > 0
        timer.stop()
        assert timer.elapsed == timer.seconds


class TestStageTimings:
    def test_nested_stages_get_compound_keys(self):
        timings = StageTimings()
        with timings.stage("solve"):
            with timings.stage("sweep"):
                pass
            with timings.stage("sweep"):
                pass
        assert sorted(timings.as_dict()) == ["solve", "solve/sweep"]
        assert timings.counts() == {"solve": 1, "solve/sweep": 2}

    def test_repeated_stages_accumulate(self):
        timings = StageTimings()
        timings.add("io", 1.0)
        timings.add("io", 2.5)
        assert timings.as_dict()["io"] == pytest.approx(3.5)
        assert timings.counts()["io"] == 2

    def test_total_counts_only_top_level(self):
        timings = StageTimings()
        timings.add("outer", 2.0)
        timings.add("outer/inner", 1.5)
        assert timings.total() == pytest.approx(2.0)

    def test_slash_in_name_rejected(self):
        timings = StageTimings()
        with pytest.raises(ValueError, match="reserved"):
            with timings.stage("a/b"):
                pass

    def test_stack_unwinds_on_exception(self):
        timings = StageTimings()
        with pytest.raises(RuntimeError):
            with timings.stage("outer"):
                raise RuntimeError("boom")
        # A later stage must be top-level again, not "outer/later".
        with timings.stage("later"):
            pass
        assert "later" in timings.as_dict()

    def test_merge_with_prefix(self):
        inner = StageTimings()
        inner.add("solve", 1.0)
        outer = StageTimings()
        outer.add("load", 0.5)
        outer.merge(inner, prefix="worker0")
        assert outer.as_dict() == pytest.approx(
            {"load": 0.5, "worker0/solve": 1.0})
        assert outer.counts()["worker0/solve"] == 1

    def test_render_lists_every_stage(self):
        timings = StageTimings()
        timings.add("solve", 0.25)
        timings.add("solve/sweep", 0.2)
        table = timings.render("breakdown")
        assert "# breakdown" in table
        assert "solve" in table and "sweep" in table
        assert "total" in table

    def test_len(self):
        timings = StageTimings()
        assert len(timings) == 0
        timings.add("a", 1.0)
        assert len(timings) == 1
