"""RunReport serialization tests."""

import json

from repro.obs import RunReport, SolverTelemetry, StageTimings, run_metadata
from repro.obs.report import REPORT_FORMAT_VERSION


class TestRunReport:
    def test_metadata_keys(self):
        meta = run_metadata()
        assert set(meta) == {"host", "python", "time", "git_sha"}
        assert all(isinstance(v, str) for v in meta.values())

    def test_git_sha_stamped(self):
        # The test suite runs inside the repo, so the SHA resolves.
        sha = run_metadata()["git_sha"]
        assert sha == "unknown" or len(sha) == 40

    def test_to_dict_minimal(self):
        payload = RunReport("empty").to_dict()
        assert payload["format_version"] == REPORT_FORMAT_VERSION
        assert payload["name"] == "empty"
        assert "timings" not in payload
        assert "telemetry" not in payload
        assert "metrics" not in payload

    def test_save_load_roundtrip(self, tmp_path):
        timings = StageTimings()
        timings.add("solve", 0.5)
        telemetry = SolverTelemetry("power")
        telemetry.record_iteration(0.25)
        report = RunReport("run", timings=timings, telemetry=telemetry)
        report.record_metric("num_articles", 1200)

        path = report.save(tmp_path / "report.json")
        loaded = RunReport.load(path)
        assert loaded == report.to_dict()
        assert loaded["metrics"]["num_articles"] == 1200
        assert loaded["telemetry"]["residuals"] == [0.25]
        assert loaded["timings"]["solve"] == 0.5

    def test_json_is_valid(self):
        report = RunReport("run")
        report.record_metric("ok", True)
        assert json.loads(report.to_json())["metrics"]["ok"] is True
