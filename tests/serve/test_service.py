"""RankingService: snapshot swaps, read path, update path, health."""

import numpy as np
import pytest

from repro.errors import ConfigError, NodeNotFoundError, OverloadError
from repro.engine.live import LiveRanker
from repro.engine.updates import yearly_updates
from repro.obs import Observability
from repro.resilience import FaultPlan, RetryPolicy
from repro.serve import (AdmissionGate, CircuitBreaker, GuardrailPolicy,
                         RankingService)

pytestmark = pytest.mark.serve

#: Instant-recovery cooldowns so tests never sleep.
FAST = RetryPolicy(max_retries=1_000, base_delay=0.0, max_delay=0.0,
                   jitter=0.0)


@pytest.fixture(scope="module")
def stream(small_dataset):
    base, batches = yearly_updates(small_dataset, from_year=2011)
    assert len(batches) >= 4
    return base, batches


def make_service(base, **kwargs):
    live = LiveRanker(base)
    kwargs.setdefault("breaker",
                      CircuitBreaker(failure_threshold=2, cooldown=FAST))
    return RankingService(live, **kwargs)


class TestValidation:
    def test_max_batch_attempts_must_be_positive(self, stream):
        base, _ = stream
        with pytest.raises(ConfigError, match="max_batch_attempts"):
            make_service(base, max_batch_attempts=0)


class TestBootstrap:
    def test_bootstrap_snapshot_is_epoch_zero(self, stream):
        base, _ = stream
        service = make_service(base)
        snap = service.snapshot()
        assert snap.epoch == 0
        assert snap.batches_applied == 0
        assert snap.num_articles == base.num_articles

    def test_health_starts_fresh(self, stream):
        base, _ = stream
        service = make_service(base)
        health = service.health()
        assert health["status"] == "fresh"
        assert health["epoch"] == 0
        assert health["batches_behind"] == 0
        assert health["breaker"] == "closed"
        readiness = service.readiness()
        assert readiness["ready"] is True
        assert readiness["degraded"] is False


class TestReadPath:
    def test_top_returns_entries_with_epoch(self, stream):
        base, _ = stream
        service = make_service(base)
        result = service.top(5)
        assert len(result.entries) == 5
        assert result.epoch == 0
        assert result.batches_behind == 0
        scores = [entry.score for entry in result.entries]
        assert scores == sorted(scores, reverse=True)

    def test_filters_and_pagination(self, stream):
        base, _ = stream
        service = make_service(base)
        venue_id = next(iter(base.venues))
        filtered = service.top(3, venue_id=venue_id)
        for entry in filtered.entries:
            assert base.articles[entry.article_id].venue_id == venue_id
        page = service.page(2, 4)
        assert [e.rank for e in page.entries] == [3, 4, 5, 6]
        best = service.top(1).entries[0]
        assert service.rank_of(best.article_id) == 1
        with pytest.raises(NodeNotFoundError):
            service.rank_of(-42)

    def test_read_session_pins_one_snapshot(self, stream):
        base, _ = stream
        service = make_service(base)
        with service.read_session() as snap:
            assert snap is service.snapshot()

    def test_requests_counted(self, stream):
        base, _ = stream
        obs = Observability("serve-test")
        service = make_service(base, obs=obs)
        service.top(3)
        service.top(3)
        counter = obs.metrics.counter("repro_serve_requests_total",
                                      labels=("outcome",))
        assert counter.value(outcome="served") == 2

    def test_shed_when_gate_full(self, stream):
        base, _ = stream
        obs = Observability("serve-test")
        service = make_service(base, obs=obs,
                               gate=AdmissionGate(max_inflight=1))
        with service.read_session():
            with pytest.raises(OverloadError):
                service.top(3)
        counter = obs.metrics.counter("repro_serve_requests_total",
                                      labels=("outcome",))
        assert counter.value(outcome="shed") == 1
        assert obs.metrics.counter("repro_serve_shed_total").value() == 1
        assert service.health()["requests_shed_total"] == 1
        # Capacity recovered once the session closed.
        assert service.top(3).epoch == 0


class TestUpdatePath:
    def test_publish_advances_epoch(self, stream):
        base, batches = stream
        service = make_service(base)
        report = service.ingest(batches[0])
        assert report.status == "published"
        assert report.epoch == 1
        assert report.batches_behind == 0
        snap = service.snapshot()
        assert snap.epoch == 1
        assert snap.batches_applied == 1
        assert snap.num_articles == base.num_articles \
            + batches[0].num_articles

    def test_published_matches_plain_live_ranker(self, stream):
        base, batches = stream
        service = make_service(base)
        reference = LiveRanker(base)
        for batch in batches[:2]:
            service.ingest(batch)
            reference.apply(batch)
        assert np.array_equal(service.snapshot().ranking.scores,
                              reference.result.scores)

    def test_poisoned_batch_quarantined_snapshot_keeps_serving(
            self, stream):
        base, batches = stream
        plan = FaultPlan().poison_batch(0)
        service = make_service(base, fault_plan=plan)
        before = service.snapshot()
        report = service.ingest(batches[0])
        assert report.status == "quarantined"
        assert "non-finite" in report.reasons[0]
        assert service.snapshot() is before  # last good snapshot intact
        records = service.quarantined
        assert len(records) == 1
        assert records[0].index == 0
        assert records[0].batch is batches[0]
        assert records[0].report()["num_articles"] \
            == batches[0].num_articles
        # The engine rolled back: the next batch applies cleanly against
        # the pre-poison state.
        next_report = service.ingest(batches[1])
        assert next_report.status == "published"
        reference = LiveRanker(base)
        reference.apply(batches[1])
        assert np.array_equal(service.snapshot().ranking.scores,
                              reference.result.scores)

    def test_transient_crash_retried_within_pump(self, stream):
        base, batches = stream
        plan = FaultPlan().crash_batch(0, times=1)
        service = make_service(
            base, fault_plan=plan,
            breaker=CircuitBreaker(failure_threshold=5, cooldown=FAST))
        report = service.ingest(batches[0])
        # Attempt 0 crashed, attempt 1 went through — one pump call.
        assert report.status == "published"
        assert report.epoch == 1
        assert service.health()["update_failures_total"] == 1
        assert service.quarantined == []

    def test_crash_looping_batch_quarantined_at_attempt_cap(self,
                                                            stream):
        base, batches = stream
        plan = FaultPlan().crash_batch(0, times=100)
        service = make_service(
            base, fault_plan=plan, max_batch_attempts=3,
            breaker=CircuitBreaker(failure_threshold=50, cooldown=FAST))
        report = service.ingest(batches[0])
        assert report.status == "quarantined"
        assert service.quarantined[0].attempts == 3
        assert "InjectedCrash" in service.quarantined[0].reasons[0]

    def test_breaker_open_defers_batches(self, stream):
        base, batches = stream
        breaker = CircuitBreaker(
            failure_threshold=1,
            cooldown=RetryPolicy(max_retries=10, base_delay=3600.0,
                                 max_delay=3600.0, jitter=0.0))
        plan = FaultPlan().crash_batch(0, times=100)
        service = make_service(base, fault_plan=plan, breaker=breaker,
                               max_batch_attempts=5)
        first = service.ingest(batches[0])
        assert first.status == "deferred"
        assert first.breaker_state == "open"
        second = service.ingest(batches[1])
        assert second.status == "deferred"
        assert service.batches_behind() == 2
        health = service.health()
        assert health["status"] == "stale"
        assert health["batches_behind"] == 2
        assert service.readiness()["degraded"] is True
        # Reads still serve the last good epoch.
        assert service.top(3).epoch == 0
        assert service.top(3).batches_behind == 2


class TestObservabilityWiring:
    def test_publish_spans_and_metrics(self, stream):
        base, batches = stream
        obs = Observability("serve-test")
        service = make_service(base, obs=obs)
        service.ingest(batches[0])
        spans = [span["name"] for span in obs.tracer.export()]
        assert "serve.publish" in spans
        assert obs.metrics.counter(
            "repro_serve_publishes_total").value() == 1
        assert obs.metrics.gauge(
            "repro_serve_stale_batches").value() == 0

    def test_trace_reads_opt_in(self, stream):
        base, _ = stream
        obs = Observability("serve-test")
        service = make_service(base, obs=obs, trace_reads=True)
        service.top(3)
        read_spans = [span for span in obs.tracer.export()
                      if span["name"] == "serve.read"]
        assert len(read_spans) == 1
        assert read_spans[0]["attributes"]["epoch"] == 0

    def test_reads_not_traced_by_default(self, stream):
        base, _ = stream
        obs = Observability("serve-test")
        service = make_service(base, obs=obs)
        service.top(3)
        assert not [span for span in obs.tracer.export()
                    if span["name"] == "serve.read"]

    def test_quarantine_event_and_counter(self, stream):
        base, batches = stream
        obs = Observability("serve-test")
        plan = FaultPlan().poison_batch(0)
        service = make_service(base, obs=obs, fault_plan=plan)
        service.ingest(batches[0])
        assert obs.metrics.counter(
            "repro_serve_quarantined_total").value() == 1


class TestGuardrailIntegration:
    def test_strict_churn_policy_vetoes_legitimate_update(self, stream):
        # A zero-churn policy on a small corpus quarantines even an
        # honest batch — proving the guardrail, not the fault plan,
        # controls publishing.
        base, batches = stream
        service = make_service(
            base,
            guardrails=GuardrailPolicy(churn_top_k=100, max_churn=0.0))
        report = service.ingest(batches[0])
        if report.status == "quarantined":
            assert any("churn" in reason for reason in report.reasons)
            assert service.snapshot().epoch == 0
        else:  # the batch genuinely moved nothing in the top-100
            assert report.status == "published"
