"""Deterministic chaos: poison + crash through a full breaker cycle.

The acceptance scenario for the serving layer: batch N is NaN-poisoned,
batch N+1 crashes the update path. The service must never publish an
invalid snapshot, reads during the incident must return the last good
epoch bit-identical to the fault-free run, the breaker must open and
then recover through its half-open probe, and the poisoned batch must
land in quarantine with a usable report.
"""

import random

import numpy as np
import pytest

from repro.engine.live import LiveRanker
from repro.resilience import FaultPlan, RetryPolicy
from repro.serve import CircuitBreaker, RankingService
from repro.serve.sim import synthetic_batch

pytestmark = [pytest.mark.serve, pytest.mark.faults]

COOLDOWN = RetryPolicy(max_retries=1_000, base_delay=0.1, max_delay=30.0,
                       jitter=0.0)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture(scope="module")
def stream(small_dataset):
    # Independent arrival batches: every article cites only the base
    # dataset, so quarantining one batch can never make a later batch
    # reference articles/authors the service never ingested (yearly
    # cohorts DO cross-reference, which would re-trip the breaker
    # during recovery and muddy the scenario under test).
    base_ids = sorted(small_dataset.articles)
    next_id = base_ids[-1] + 1
    _, year = small_dataset.year_range()
    rng = random.Random(7)
    batches = []
    for _ in range(4):
        batches.append(synthetic_batch(base_ids, next_id, 25, year, rng))
        next_id += 25
    return small_dataset, batches


@pytest.fixture(scope="module")
def reference_epochs(stream):
    """Fault-free per-epoch scores: epoch N = batches 0..N-1 applied."""
    base, batches = stream
    live = LiveRanker(base)
    epochs = {0: live.result.scores.copy()}
    for number, batch in enumerate(batches[:4], start=1):
        result, _ = live.apply(batch)
        epochs[number] = result.scores.copy()
    return epochs


def test_poison_then_crash_full_incident(stream, reference_epochs):
    base, batches = stream
    clock = FakeClock()
    plan = FaultPlan().poison_batch(1).crash_batch(2)
    breaker = CircuitBreaker(failure_threshold=2, cooldown=COOLDOWN,
                             clock=clock)
    service = RankingService(LiveRanker(base), breaker=breaker,
                             fault_plan=plan)

    # Batch 0 publishes normally.
    assert service.ingest(batches[0]).status == "published"
    assert np.array_equal(service.snapshot().ranking.scores,
                          reference_epochs[1])

    # Batch 1 is poisoned: guardrails veto it, it is quarantined, the
    # epoch-1 snapshot keeps serving (failure 1 of 2 — breaker closed).
    report = service.ingest(batches[1])
    assert report.status == "quarantined"
    assert service.snapshot().epoch == 1
    assert breaker.state == "closed"

    # Batch 2 crashes the update path: failure 2 trips the breaker.
    report = service.ingest(batches[2])
    assert report.status == "deferred"
    assert breaker.state == "open"
    assert breaker.opened_total == 1

    # Batch 3 arrives mid-incident and queues behind the breaker.
    assert service.ingest(batches[3]).status == "deferred"
    assert service.batches_behind() == 2

    # Reads during the incident: last good epoch, bit-identical to the
    # fault-free run's epoch 1, and every score finite (the invalid
    # candidate never swapped in).
    incident_read = service.top(10)
    assert incident_read.epoch == 1
    assert incident_read.batches_behind == 2
    assert np.array_equal(service.snapshot().ranking.scores,
                          reference_epochs[1])
    assert np.all(np.isfinite(service.snapshot().ranking.scores))
    health = service.health()
    assert health["status"] == "stale"
    assert health["breaker"] == "open"

    # Cooldown elapses; the half-open probe (batch 2, attempt 1 — its
    # fault fired only on attempt 0) succeeds, closes the breaker, and
    # the backlog drains.
    clock.advance(0.11)
    assert breaker.state == "half_open"
    published, quarantined = service.pump()
    assert published == 2
    assert quarantined == 0
    assert breaker.state == "closed"
    assert service.batches_behind() == 0

    # Post-recovery state: exactly "batch 1 skipped", verified
    # bit-identical against a clean run that never saw it.
    reference = LiveRanker(base)
    for batch in (batches[0], batches[2], batches[3]):
        reference.apply(batch)
    assert np.array_equal(service.snapshot().ranking.scores,
                          reference.result.scores)
    assert service.snapshot().epoch == 3  # 3 publishes, 1 quarantine

    # Quarantine triage: the poisoned batch, with the offending batch
    # object attached and a JSON-able report.
    records = service.quarantined
    assert len(records) == 1
    assert records[0].index == 1
    assert records[0].batch is batches[1]
    assert any("non-finite" in reason for reason in records[0].reasons)
    payload = records[0].report()
    assert payload["index"] == 1
    assert payload["num_articles"] == batches[1].num_articles
    assert "batch" not in payload
    assert health["quarantined_total"] == 1


def test_probe_failure_reopens_then_recovers(stream):
    base, batches = stream
    clock = FakeClock()
    plan = FaultPlan().crash_batch(0, times=3)
    breaker = CircuitBreaker(failure_threshold=1, cooldown=COOLDOWN,
                             clock=clock)
    service = RankingService(LiveRanker(base), breaker=breaker,
                             fault_plan=plan, max_batch_attempts=10)

    # Attempt 0 crashes; threshold 1 opens the breaker immediately.
    assert service.ingest(batches[0]).status == "deferred"
    assert breaker.opened_total == 1

    # First probe (attempt 1) crashes again: re-open, longer cooldown.
    clock.advance(0.11)
    assert service.pump() == (0, 0)
    assert breaker.state == "open"
    assert breaker.opened_total == 2
    assert breaker.cooldown_remaining == pytest.approx(0.2)

    # Second probe (attempt 2) still crashes (times=3).
    clock.advance(0.21)
    assert service.pump() == (0, 0)
    assert breaker.opened_total == 3

    # Third probe (attempt 3) is past the fault: publish, close, drain.
    clock.advance(0.41)
    assert service.pump() == (1, 0)
    assert breaker.state == "closed"
    assert service.batches_behind() == 0
    assert service.snapshot().epoch == 1
    reference = LiveRanker(base)
    reference.apply(batches[0])
    assert np.array_equal(service.snapshot().ranking.scores,
                          reference.result.scores)


def test_open_breaker_never_attempts(stream):
    base, batches = stream
    clock = FakeClock()
    plan = FaultPlan().crash_batch(0, times=100)
    breaker = CircuitBreaker(failure_threshold=1, cooldown=COOLDOWN,
                             clock=clock)
    service = RankingService(LiveRanker(base), breaker=breaker,
                             fault_plan=plan, max_batch_attempts=100)
    service.ingest(batches[0])
    failures_after_trip = service.health()["update_failures_total"]
    # Pumping while open is a no-op: no attempts, no new failures.
    for _ in range(5):
        assert service.pump() == (0, 0)
    assert service.health()["update_failures_total"] \
        == failures_after_trip
