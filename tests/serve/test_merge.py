"""Scatter-gather merge: global order and rank renumbering."""

import pytest

from repro.errors import ConfigError
from repro.query import RankEntry
from repro.serve import merge_page_entries, merge_top_entries

pytestmark = pytest.mark.serve


def entry(article_id, score, rank=1):
    return RankEntry(rank=rank, article_id=article_id, score=score,
                     year=2000, title=f"a{article_id}")


class TestMergeTop:
    def test_k_must_be_positive(self):
        with pytest.raises(ConfigError, match="k"):
            merge_top_entries([[]], 0)

    def test_merges_by_score_descending(self):
        left = [entry(0, 0.9), entry(2, 0.5)]
        right = [entry(1, 0.7), entry(3, 0.1)]
        merged = merge_top_entries([left, right], 4)
        assert [e.article_id for e in merged] == [0, 1, 2, 3]
        assert [e.rank for e in merged] == [1, 2, 3, 4]

    def test_ties_break_by_ascending_article_id_across_shards(self):
        """The single-process lexsort order, reproduced by the merge."""
        left = [entry(5, 0.5), entry(7, 0.5)]
        right = [entry(2, 0.5), entry(6, 0.5)]
        merged = merge_top_entries([left, right], 4)
        assert [e.article_id for e in merged] == [2, 5, 6, 7]

    def test_truncates_to_k(self):
        left = [entry(0, 0.9), entry(2, 0.5)]
        right = [entry(1, 0.7)]
        assert [e.article_id
                for e in merge_top_entries([left, right], 2)] == [0, 1]

    def test_empty_shards_tolerated(self):
        assert merge_top_entries([[], [entry(1, 0.5)], []], 3) \
            == [entry(1, 0.5, rank=1)]


class TestMergePage:
    def test_validation(self):
        with pytest.raises(ConfigError, match="offset"):
            merge_page_entries([[]], -1, 5)
        with pytest.raises(ConfigError, match="offset"):
            merge_page_entries([[]], 0, 0)

    def test_slice_with_global_ranks(self):
        left = [entry(0, 0.9), entry(2, 0.5)]
        right = [entry(1, 0.7), entry(3, 0.1)]
        page = merge_page_entries([left, right], offset=1, limit=2)
        assert [e.article_id for e in page] == [1, 2]
        assert [e.rank for e in page] == [2, 3]

    def test_offset_past_end_is_empty(self):
        assert merge_page_entries([[entry(0, 0.9)]], 5, 2) == []
