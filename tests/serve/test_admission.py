"""AdmissionGate: bounded admission, typed sheds, deadline waits."""

import threading
import time

import pytest

from repro.errors import ConfigError, OverloadError
from repro.resilience import Deadline
from repro.serve import AdmissionGate

pytestmark = pytest.mark.serve


class TestValidation:
    def test_max_inflight_must_be_positive(self):
        with pytest.raises(ConfigError, match="max_inflight"):
            AdmissionGate(max_inflight=0)

    def test_max_waiting_must_be_non_negative(self):
        with pytest.raises(ConfigError, match="max_waiting"):
            AdmissionGate(max_waiting=-1)


class TestAdmission:
    def test_admit_and_release(self):
        gate = AdmissionGate(max_inflight=2)
        with gate.admit():
            assert gate.inflight == 1
            with gate.admit():
                assert gate.inflight == 2
        assert gate.inflight == 0
        assert gate.admitted_total == 2
        assert gate.shed_total == 0

    def test_full_gate_sheds_typed_error(self):
        gate = AdmissionGate(max_inflight=1)
        with gate.admit():
            with pytest.raises(OverloadError) as info:
                with gate.admit():
                    pass
        assert info.value.inflight == 1
        assert info.value.capacity == 1
        assert gate.shed_total == 1

    def test_slot_frees_after_exception_in_block(self):
        gate = AdmissionGate(max_inflight=1)
        with pytest.raises(RuntimeError):
            with gate.admit():
                raise RuntimeError("reader failed")
        with gate.admit():  # slot was released despite the exception
            assert gate.inflight == 1

    def test_no_waiting_room_sheds_even_with_deadline(self):
        gate = AdmissionGate(max_inflight=1, max_waiting=0)
        with gate.admit():
            with pytest.raises(OverloadError, match="full"):
                with gate.admit(Deadline(seconds=5.0)):
                    pass

    def test_waiting_without_deadline_sheds(self):
        gate = AdmissionGate(max_inflight=1, max_waiting=4)
        with gate.admit():
            with pytest.raises(OverloadError):
                with gate.admit():
                    pass


class TestWaiting:
    def test_waiter_admitted_when_slot_frees(self):
        gate = AdmissionGate(max_inflight=1, max_waiting=1)
        holding = threading.Event()
        release = threading.Event()
        outcome = {}

        def holder():
            with gate.admit():
                holding.set()
                release.wait(timeout=5.0)

        def waiter():
            try:
                with gate.admit(Deadline(seconds=5.0)):
                    outcome["admitted"] = True
            except OverloadError:
                outcome["admitted"] = False

        hold_thread = threading.Thread(target=holder)
        hold_thread.start()
        assert holding.wait(timeout=5.0)
        wait_thread = threading.Thread(target=waiter)
        wait_thread.start()
        time.sleep(0.05)  # let the waiter actually enter the wait loop
        release.set()
        hold_thread.join(timeout=5.0)
        wait_thread.join(timeout=5.0)
        assert outcome["admitted"] is True
        assert gate.shed_total == 0

    def test_deadline_expiry_sheds_waiter(self):
        gate = AdmissionGate(max_inflight=1, max_waiting=1)
        with gate.admit():
            start = time.monotonic()
            with pytest.raises(OverloadError, match="deadline expired"):
                with gate.admit(Deadline(seconds=0.05)):
                    pass
            assert time.monotonic() - start < 2.0
        assert gate.shed_total == 1

    def test_spurious_wakeup_re_waits_instead_of_admitting(self):
        """A notify without a freed slot must not admit the waiter."""
        gate = AdmissionGate(max_inflight=1, max_waiting=1)
        holding = threading.Event()
        release = threading.Event()
        outcome = {}

        def holder():
            with gate.admit():
                holding.set()
                release.wait(timeout=5.0)

        def waiter():
            try:
                with gate.admit(Deadline(seconds=5.0)):
                    outcome["admitted_while_full"] = gate.inflight > 1
            except OverloadError:
                outcome["admitted_while_full"] = None

        hold_thread = threading.Thread(target=holder)
        hold_thread.start()
        assert holding.wait(timeout=5.0)
        wait_thread = threading.Thread(target=waiter)
        wait_thread.start()
        time.sleep(0.05)
        # Spurious wakeup: the gate is still full, so the waiter must
        # re-test the predicate and go back to waiting.
        for _ in range(3):
            with gate._condition:
                gate._condition.notify()
            time.sleep(0.02)
        assert "admitted_while_full" not in outcome
        assert gate._waiting == 1
        release.set()
        hold_thread.join(timeout=5.0)
        wait_thread.join(timeout=5.0)
        assert outcome["admitted_while_full"] is False
        assert gate.shed_total == 0

    def test_timed_out_waiter_hands_wakeup_to_co_waiter(self):
        """A shed waiter must not strand a co-waiter with budget left.

        The short-deadline waiter can consume the release notify and
        then shed on its expired deadline; the handoff re-notify keeps
        the long-deadline waiter from waiting for a release that
        already happened.
        """
        gate = AdmissionGate(max_inflight=1, max_waiting=2)
        holding = threading.Event()
        release = threading.Event()
        outcome = {}

        def holder():
            with gate.admit():
                holding.set()
                release.wait(timeout=5.0)

        def waiter(name, seconds):
            try:
                with gate.admit(Deadline(seconds=seconds)):
                    outcome[name] = "admitted"
            except OverloadError:
                outcome[name] = "shed"

        hold_thread = threading.Thread(target=holder)
        hold_thread.start()
        assert holding.wait(timeout=5.0)
        short = threading.Thread(target=waiter, args=("short", 0.15))
        long_ = threading.Thread(target=waiter, args=("long", 10.0))
        short.start()
        long_.start()
        time.sleep(0.05)  # both inside the wait loop
        release.set()  # release races with short's deadline expiry
        hold_thread.join(timeout=5.0)
        short.join(timeout=5.0)
        long_.join(timeout=5.0)
        # Whatever the race outcome for "short", "long" always wins a
        # slot — it must never hang until its own 10s deadline.
        assert outcome["long"] == "admitted"
        assert gate._waiting == 0
        assert gate.inflight == 0

    def test_repeated_sheds_leave_waiting_count_at_zero(self):
        """Timeout sheds must decrement the waiting count every time."""
        gate = AdmissionGate(max_inflight=1, max_waiting=3)
        with gate.admit():
            for _ in range(3):
                with pytest.raises(OverloadError):
                    with gate.admit(Deadline(seconds=0.01)):
                        pass
        assert gate._waiting == 0
        assert gate.shed_total == 3
        # The room did not leak: a fresh waiter still fits.
        with gate.admit(Deadline(seconds=0.5)):
            assert gate.inflight == 1

    def test_waiting_room_capacity_sheds_excess(self):
        gate = AdmissionGate(max_inflight=1, max_waiting=1)
        entered = threading.Event()
        release = threading.Event()
        results = []

        def holder():
            with gate.admit():
                entered.set()
                release.wait(timeout=5.0)

        def waiter():
            try:
                with gate.admit(Deadline(seconds=5.0)):
                    results.append("admitted")
            except OverloadError as exc:
                results.append(str(exc))

        hold_thread = threading.Thread(target=holder)
        hold_thread.start()
        assert entered.wait(timeout=5.0)
        first = threading.Thread(target=waiter)
        first.start()
        time.sleep(0.05)  # first waiter occupies the waiting room
        with pytest.raises(OverloadError, match="waiting room full"):
            with gate.admit(Deadline(seconds=5.0)):
                pass
        release.set()
        hold_thread.join(timeout=5.0)
        first.join(timeout=5.0)
        assert results == ["admitted"]
