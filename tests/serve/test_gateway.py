"""ShardedGateway: cross-process parity and per-shard degradation.

The acceptance suite for the sharded tier: K-shard scatter-gather
results must be **bit-identical** (ids, scores, tie order, ranks) to
the single-process :class:`RankingService` on the same snapshot —
including filtered queries — and a crash/poisoned shard must degrade
alone (last good shard snapshot serving, reported in ``health()``)
while every other shard stays fresh.
"""

import asyncio
import random

import pytest

from repro.errors import ConfigError, NodeNotFoundError, ServeError
from repro.data.generator import GeneratorConfig, generate_dataset
from repro.engine.live import LiveRanker
from repro.resilience import (WORKER_CRASH_EXIT_CODE, FaultPlan,
                              RetryPolicy)
from repro.serve import ShardedGateway
from repro.serve.sim import synthetic_batch

pytestmark = pytest.mark.serve

#: Instant shard-breaker recovery so tests never sleep.
FAST = RetryPolicy(max_retries=1_000, base_delay=0.0, max_delay=0.0,
                   jitter=0.0)


@pytest.fixture(scope="module")
def gateway_dataset():
    config = GeneratorConfig(num_articles=180, num_venues=6,
                             num_authors=50, start_year=2000,
                             end_year=2010, seed=13)
    return generate_dataset(config)


def make_gateway(dataset, num_shards=3, **kwargs):
    kwargs.setdefault("mode", "inline")
    kwargs.setdefault("shard_cooldown", FAST)
    return ShardedGateway(LiveRanker(dataset), num_shards, **kwargs)


def feed(gateway, dataset, batches, batch_size=12, seed=0):
    rng = random.Random(seed)
    base_ids = sorted(dataset.articles)
    next_id = base_ids[-1] + 1
    _, year = dataset.year_range()
    for _ in range(batches):
        batch = synthetic_batch(base_ids, next_id, batch_size, year, rng)
        next_id += batch_size
        gateway.ingest(batch)


class TestValidation:
    def test_num_shards_must_be_positive(self, gateway_dataset):
        with pytest.raises(ConfigError, match="num_shards"):
            make_gateway(gateway_dataset, num_shards=0)

    def test_mode_is_checked(self, gateway_dataset):
        with pytest.raises(ConfigError, match="mode"):
            make_gateway(gateway_dataset, mode="thread")


class TestParity:
    """Gateway merges must be bit-identical to the single index."""

    def test_top_k_bit_identical_after_churn(self, gateway_dataset):
        with make_gateway(gateway_dataset) as gateway:
            feed(gateway, gateway_dataset, batches=2)
            index = gateway.service.snapshot().index
            for k in (1, 10, 50):
                result = gateway.top_sync(k)
                assert result.complete
                # Dataclass equality compares floats exactly: ids,
                # scores, tie order, and ranks all bit-identical.
                assert result.entries == index.top(k)

    def test_filtered_queries_bit_identical(self, gateway_dataset):
        with make_gateway(gateway_dataset) as gateway:
            feed(gateway, gateway_dataset, batches=1)
            index = gateway.service.snapshot().index
            venue = next(iter(gateway_dataset.venues))
            author = next(iter(gateway_dataset.authors))
            assert gateway.top_sync(10, venue_id=venue).entries \
                == index.top(10, venue_id=venue)
            assert gateway.top_sync(10, author_id=author).entries \
                == index.top(10, author_id=author)
            assert gateway.top_sync(
                10, year_range=(2003, 2008)).entries \
                == index.top(10, year_range=(2003, 2008))

    def test_page_bit_identical(self, gateway_dataset):
        with make_gateway(gateway_dataset) as gateway:
            index = gateway.service.snapshot().index
            assert gateway.page_sync(0, 10).entries == index.page(0, 10)
            assert gateway.page_sync(25, 10).entries \
                == index.page(25, 10)

    def test_rank_of_matches_single_process(self, gateway_dataset):
        with make_gateway(gateway_dataset) as gateway:
            index = gateway.service.snapshot().index
            for article_id in list(gateway_dataset.articles)[:25]:
                assert gateway.rank_of(article_id) \
                    == index.rank_of(article_id)

    def test_rank_of_unknown_article_raises(self, gateway_dataset):
        with make_gateway(gateway_dataset) as gateway:
            with pytest.raises(NodeNotFoundError):
                gateway.rank_of(10_000_000)

    def test_async_scatter_gather_parity(self, gateway_dataset):
        with make_gateway(gateway_dataset) as gateway:
            index = gateway.service.snapshot().index

            async def queries():
                top, page = await asyncio.gather(
                    gateway.top(10), gateway.page(5, 5))
                return top, page

            top, page = asyncio.run(queries())
            assert top.entries == index.top(10)
            assert page.entries == index.page(5, 5)

    def test_single_shard_degenerate_case(self, gateway_dataset):
        with make_gateway(gateway_dataset, num_shards=1) as gateway:
            index = gateway.service.snapshot().index
            assert gateway.top_sync(20).entries == index.top(20)


class TestFloat32Serving:
    """Opt-in float32 score board behind the same query surface."""

    def test_top_k_within_float32_tolerance(self, gateway_dataset):
        import numpy as np

        from repro.engine.shm import (FLOAT32_PARITY_ATOL,
                                      FLOAT32_PARITY_RTOL)

        with make_gateway(gateway_dataset,
                          score_dtype=np.float32) as gateway:
            feed(gateway, gateway_dataset, batches=2)
            index = gateway.service.snapshot().index
            result = gateway.top_sync(25)
            assert result.complete
            exact = index.top(25)
            assert [e.article_id for e in result.entries] \
                == [e.article_id for e in exact]
            got = np.array([e.score for e in result.entries])
            want = np.array([e.score for e in exact])
            assert np.allclose(got, want, rtol=FLOAT32_PARITY_RTOL,
                               atol=FLOAT32_PARITY_ATOL)

    def test_float64_default_unchanged(self, gateway_dataset):
        import numpy as np

        with make_gateway(gateway_dataset) as gateway:
            assert gateway._writer.dtype == np.float64


class TestProcessMode:
    def test_cross_process_parity_and_health(self, gateway_dataset):
        with make_gateway(gateway_dataset, num_shards=2,
                          mode="process",
                          call_timeout=60.0) as gateway:
            feed(gateway, gateway_dataset, batches=2)
            index = gateway.service.snapshot().index
            result = gateway.top_sync(25)
            assert result.complete
            assert result.entries == index.top(25)
            health = gateway.health()
            assert health["status"] == "fresh"
            assert [s["status"] for s in health["shards"]] \
                == ["fresh", "fresh"]


class TestChaos:
    pytestmark = [pytest.mark.serve, pytest.mark.faults]

    def test_poisoned_shard_degrades_alone_and_recovers(
            self, gateway_dataset):
        plan = FaultPlan().poison_shard(1, epoch=1)
        with make_gateway(gateway_dataset, num_shards=3,
                          fault_plan=plan,
                          auto_respawn=False) as gateway:
            before = gateway.top_sync(10)
            feed(gateway, gateway_dataset, batches=1)
            health = gateway.health()
            assert health["status"] == "degraded"
            assert health["degraded_shards"] == [1]
            statuses = {s["shard"]: s["status"]
                        for s in health["shards"]}
            assert statuses[1] == "lagging"
            assert statuses[0] == statuses[2] == "fresh"
            # The lagging shard still answers from its last good
            # snapshot: queries stay complete, freshness floor drops.
            during = gateway.top_sync(10)
            assert during.complete
            assert during.epoch == before.epoch
            # repair() re-attempts past the fault's times budget.
            gateway.repair()
            health = gateway.health()
            assert health["status"] == "fresh"
            assert gateway.top_sync(10).entries \
                == gateway.service.snapshot().index.top(10)

    def test_crashed_worker_process_detected_and_respawned(
            self, gateway_dataset):
        plan = FaultPlan().crash_shard(0, epoch=1)
        with make_gateway(gateway_dataset, num_shards=2,
                          mode="process", fault_plan=plan,
                          auto_respawn=False,
                          call_timeout=60.0) as gateway:
            feed(gateway, gateway_dataset, batches=1)
            health = gateway.health()
            assert health["status"] == "degraded"
            assert health["degraded_shards"] == [0]
            # The worker died with the recognizable chaos exit code.
            assert gateway._handles[0].exit_code \
                == WORKER_CRASH_EXIT_CODE
            # Queries degrade per-shard: answered from the survivor.
            result = gateway.top_sync(10)
            assert not result.complete
            assert result.degraded == (0,)
            assert result.shards_answered == 1
            gateway.repair()
            health = gateway.health()
            assert health["status"] == "fresh"
            assert health["respawns_total"] == 1
            assert gateway.top_sync(10).entries \
                == gateway.service.snapshot().index.top(10)

    def test_auto_respawn_recovers_within_the_publish(
            self, gateway_dataset):
        plan = FaultPlan().crash_shard(1, epoch=1)
        with make_gateway(gateway_dataset, num_shards=2,
                          mode="process", fault_plan=plan,
                          auto_respawn=True,
                          call_timeout=60.0) as gateway:
            feed(gateway, gateway_dataset, batches=1)
            health = gateway.health()
            assert health["status"] == "fresh"
            assert health["respawns_total"] == 1
            assert gateway.top_sync(10).entries \
                == gateway.service.snapshot().index.top(10)

    def test_all_shards_down_raises_typed_error(self, gateway_dataset):
        plan = FaultPlan()
        plan.crash_shard(0, epoch=0, times=10)
        plan.crash_shard(1, epoch=0, times=10)
        with make_gateway(gateway_dataset, num_shards=2,
                          fault_plan=plan,
                          auto_respawn=False) as gateway:
            with pytest.raises(ServeError, match="no shard answered"):
                gateway.top_sync(5)
            readiness = gateway.readiness()
            assert readiness["ready"] is False
