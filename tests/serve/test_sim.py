"""serve-sim: the simulated workload and its CLI front-end."""

import json

import pytest

from repro.cli import main
from repro.data.generator import GeneratorConfig, generate_dataset
from repro.serve import run_simulation

pytestmark = pytest.mark.serve


@pytest.fixture(scope="module")
def sim_dataset():
    config = GeneratorConfig(num_articles=300, num_venues=6,
                             num_authors=80, start_year=2000,
                             end_year=2010, seed=11)
    return generate_dataset(config)


@pytest.fixture(scope="module")
def dataset_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("serve-sim") / "ds.jsonl"
    assert main(["generate", str(path), "--articles", "300",
                 "--venues", "6", "--authors", "80", "--seed", "11"]) == 0
    return path


class TestRunSimulation:
    def test_fault_free_run_drains_and_stays_fresh(self, sim_dataset):
        sim = run_simulation(sim_dataset, batches=3, batch_size=10,
                             readers=1)
        assert sim.health["status"] == "fresh"
        assert sim.health["epoch"] == 3
        assert sim.health["batches_behind"] == 0
        assert sim.quarantined == []
        assert sim.read_failures == []
        ingest_ticks = [t for t in sim.timeline if t["phase"] == "ingest"]
        assert [t["status"] for t in ingest_ticks] == ["published"] * 3

    def test_poison_and_crash_recover_through_breaker(self, sim_dataset):
        sim = run_simulation(sim_dataset, batches=4, batch_size=10,
                             readers=1, poison_batch=1, crash_batch=2,
                             failure_threshold=2)
        # The poisoned batch is quarantined with a usable report...
        assert [record["index"] for record in sim.quarantined] == [1]
        assert any("non-finite" in reason
                   for reason in sim.quarantined[0]["reasons"])
        # ... the breaker opened mid-timeline ...
        assert any(t["breaker"] == "open" for t in sim.timeline)
        # ... and the recovery loop drained the backlog: 3 of 4 batches
        # published (epoch 3), breaker closed, nothing left behind.
        assert sim.health["epoch"] == 3
        assert sim.health["batches_behind"] == 0
        assert sim.health["breaker"] == "closed"
        assert sim.health["status"] == "fresh"
        recover_ticks = [t for t in sim.timeline
                         if t["phase"] == "recover"]
        assert recover_ticks, "recovery never ticked"

    def test_render_and_json(self, sim_dataset):
        sim = run_simulation(sim_dataset, batches=2, batch_size=10,
                             readers=1)
        text = sim.render()
        assert text.splitlines()[0].startswith("# tick")
        assert "final status 'fresh'" in text
        payload = json.loads(sim.to_json())
        assert set(payload) == {"status", "error", "timeline", "health",
                                "quarantined", "reads_total",
                                "reads_shed", "read_failures"}
        assert payload["status"] == "ok"
        assert payload["error"] is None
        assert len(payload["timeline"]) == 2


class TestCli:
    def test_serve_sim_prints_timeline(self, dataset_path, capsys):
        assert main(["serve-sim", str(dataset_path), "--batches", "2",
                     "--batch-size", "10", "--readers", "1"]) == 0
        out = capsys.readouterr().out
        assert "# serve-sim:" in out
        assert "# tick" in out
        assert "ingest" in out

    def test_serve_sim_faulted_run_writes_json_artifact(
            self, dataset_path, tmp_path, capsys):
        artifact = tmp_path / "timeline.json"
        assert main(["serve-sim", str(dataset_path), "--batches", "3",
                     "--batch-size", "10", "--readers", "1",
                     "--poison-batch", "1", "--json",
                     str(artifact)]) == 0
        out = capsys.readouterr().out
        assert "quarantined batch 1" in out
        payload = json.loads(artifact.read_text())
        assert [r["index"] for r in payload["quarantined"]] == [1]
        assert payload["health"]["batches_behind"] == 0
