"""ShardServer: per-shard refresh, slice guardrails, gated reads."""

import numpy as np
import pytest

from repro.errors import ConfigError, ServeError
from repro.data.schema import Article
from repro.engine.shm import ScoreBoardWriter
from repro.resilience import FaultPlan
from repro.serve.shard import (ShardConfig, ShardServer, ShardSpec,
                               shard_of)

pytestmark = pytest.mark.serve


def make_articles(count):
    return [Article(id=article_id, title=f"a{article_id}",
                    year=2000 + article_id % 5, venue_id=None,
                    author_ids=(), references=())
            for article_id in range(count)]


@pytest.fixture()
def board():
    writer = ScoreBoardWriter(capacity=64)
    yield writer
    writer.close()


def publish(writer, count, epoch=0, scale=1.0):
    ids = np.arange(count, dtype=np.int64)
    scores = (ids.astype(np.float64) + 1.0) * scale / count
    writer.publish(ids, scores, epoch)
    return ids, scores


class TestShardSpec:
    def test_validation(self):
        with pytest.raises(ConfigError, match="num_shards"):
            ShardSpec(shard=0, num_shards=0)
        with pytest.raises(ConfigError, match="shard"):
            ShardSpec(shard=2, num_shards=2)

    def test_modulo_ownership(self):
        spec = ShardSpec(shard=1, num_shards=3)
        assert spec.owns(1) and spec.owns(4) and not spec.owns(3)
        assert shard_of(10, 3) == 1


class TestRefresh:
    def test_refresh_builds_owned_slice(self, board):
        articles = make_articles(10)
        publish(board, 10)
        spec = ShardSpec(shard=0, num_shards=2)
        server = ShardServer(spec, board.layout,
                             [a for a in articles if spec.owns(a.id)])
        report = server.refresh(epoch=0)
        assert report["status"] == "refreshed"
        assert report["articles"] == 5
        epoch, entries = server.top(5)
        assert epoch == 0
        assert all(entry.article_id % 2 == 0 for entry in entries)
        server.close()

    def test_misrouted_article_rejected(self, board):
        spec = ShardSpec(shard=0, num_shards=2)
        with pytest.raises(ServeError, match="does not belong"):
            ShardServer(spec, board.layout, make_articles(2))

    def test_query_before_refresh_raises(self, board):
        spec = ShardSpec(shard=0, num_shards=2)
        server = ShardServer(spec, board.layout, [])
        with pytest.raises(ServeError, match="no refreshed snapshot"):
            server.top(3)
        server.close()

    def test_coverage_mismatch_vetoes(self, board):
        """Board missing an owned article: the slice must not swap."""
        articles = make_articles(12)
        publish(board, 10)  # articles 10, 11 not on the board yet
        spec = ShardSpec(shard=0, num_shards=2)
        server = ShardServer(spec, board.layout,
                             [a for a in articles if spec.owns(a.id)])
        report = server.refresh(epoch=0)
        assert report["status"] == "vetoed"
        assert any("coverage" in v for v in report["violations"])
        server.close()

    def test_poison_fault_vetoed_and_previous_snapshot_serves(self,
                                                              board):
        articles = make_articles(10)
        publish(board, 10, epoch=0)
        spec = ShardSpec(shard=1, num_shards=2)
        plan = FaultPlan().poison_shard(1, epoch=1)
        server = ShardServer(
            spec, board.layout,
            [a for a in articles if spec.owns(a.id)],
            ShardConfig(fault_plan=plan))
        assert server.refresh(epoch=0)["status"] == "refreshed"
        before = server.top(3)
        publish(board, 10, epoch=1, scale=1.5)
        report = server.refresh(epoch=1, attempt=0)
        assert report["status"] == "vetoed"
        assert any("non-finite" in v for v in report["violations"])
        # Last good snapshot keeps answering, stale but correct.
        assert server.top(3) == before
        assert server.health()["status"] == "lagging"
        # The fault's times budget is spent: the retry succeeds.
        assert server.refresh(epoch=1, attempt=1)["status"] \
            == "refreshed"
        assert server.health()["status"] == "fresh"
        server.close()

    def test_health_reports_counters(self, board):
        articles = make_articles(4)
        publish(board, 4)
        spec = ShardSpec(shard=0, num_shards=1)
        server = ShardServer(spec, board.layout, articles)
        server.refresh(epoch=0)
        server.top(2)
        health = server.health()
        assert health["status"] == "fresh"
        assert health["refreshes_total"] == 1
        assert health["vetoes_total"] == 0
        assert health["requests_admitted_total"] == 1
        server.close()


class TestCountAbove:
    def test_count_above_matches_global_rank(self, board):
        """Summing per-shard counts reconstructs the global rank."""
        from repro.query import RankIndex
        from repro.data.schema import ScholarlyDataset

        articles = make_articles(10)
        ids, scores = publish(board, 10)
        servers = []
        for shard in range(2):
            spec = ShardSpec(shard=shard, num_shards=2)
            server = ShardServer(
                spec, board.layout,
                [a for a in articles if spec.owns(a.id)])
            server.refresh(epoch=0)
            servers.append(server)
        dataset = ScholarlyDataset(name="all")
        for article in articles:
            dataset.articles[article.id] = article
        index = RankIndex(dataset, dict(zip(ids.tolist(),
                                            scores.tolist())))
        for article in articles:
            _, score = servers[article.id % 2].score_of(article.id)
            ahead = sum(server.count_above(score, article.id)[1]
                        for server in servers)
            assert ahead + 1 == index.rank_of(article.id)
        for server in servers:
            server.close()
