"""Threaded stress: concurrent readers vs snapshot publishes.

The core atomicity claim: N reader threads hammering ``top(k)`` while
the updater publishes M snapshots must only ever observe *complete*
snapshots — every read's entries must exactly match the published
ranking of the epoch the read reports, never a mix of two epochs.
"""

import threading

import pytest

from repro.errors import OverloadError
from repro.engine.live import LiveRanker
from repro.engine.updates import yearly_updates
from repro.resilience import FaultPlan, RetryPolicy
from repro.serve import AdmissionGate, CircuitBreaker, RankingService

pytestmark = pytest.mark.serve

READERS = 6
TOP_K = 10


@pytest.fixture(scope="module")
def stream(small_dataset):
    base, batches = yearly_updates(small_dataset, from_year=2011)
    assert len(batches) >= 4
    return base, batches


def test_no_torn_reads_across_publishes(stream):
    base, batches = stream

    # Reference pass: the exact top-k every epoch must serve.
    reference = RankingService(LiveRanker(base))
    expected = {0: tuple((e.article_id, e.score)
                         for e in reference.top(TOP_K).entries)}
    for number, batch in enumerate(batches[:4], start=1):
        assert reference.ingest(batch).status == "published"
        expected[number] = tuple((e.article_id, e.score)
                                 for e in reference.top(TOP_K).entries)

    service = RankingService(LiveRanker(base),
                             gate=AdmissionGate(max_inflight=64))
    stop = threading.Event()
    torn = []
    observations = []
    lock = threading.Lock()

    def reader():
        local = []
        while not stop.is_set():
            result = service.top(TOP_K)
            seen = tuple((e.article_id, e.score)
                         for e in result.entries)
            if seen != expected.get(result.epoch):
                torn.append((result.epoch, seen))
                return
            local.append(result.epoch)
        with lock:
            observations.extend(local)

    threads = [threading.Thread(target=reader) for _ in range(READERS)]
    for thread in threads:
        thread.start()
    for batch in batches[:4]:
        assert service.ingest(batch).status == "published"
    stop.set()
    for thread in threads:
        thread.join(timeout=30.0)
        assert not thread.is_alive(), "reader deadlocked"

    assert torn == [], f"torn reads observed: {torn[:3]}"
    assert observations, "readers never completed a read"
    assert set(observations) <= set(expected)
    # The last published epoch must be observable after the run.
    assert service.top(TOP_K).epoch == 4


def test_shed_requests_typed_and_counted_exactly(stream):
    base, _ = stream
    service = RankingService(LiveRanker(base),
                             gate=AdmissionGate(max_inflight=1))
    shed = []
    with service.read_session():  # occupy the only slot
        for _ in range(7):
            with pytest.raises(OverloadError) as info:
                service.top(TOP_K)
            shed.append(info.value)
    assert all(error.capacity == 1 for error in shed)
    assert all(error.inflight == 1 for error in shed)
    assert service.health()["requests_shed_total"] == 7
    # The slot freed: reads flow again and the counter stays exact.
    service.top(TOP_K)
    assert service.health()["requests_shed_total"] == 7


def test_concurrent_overload_counts_are_exact(stream):
    base, _ = stream
    service = RankingService(LiveRanker(base),
                             gate=AdmissionGate(max_inflight=2))
    attempts_per_thread = 50
    served = []
    shed = []
    lock = threading.Lock()

    def reader():
        local_served = 0
        local_shed = 0
        for _ in range(attempts_per_thread):
            try:
                service.top(TOP_K)
                local_served += 1
            except OverloadError:
                local_shed += 1
        with lock:
            served.append(local_served)
            shed.append(local_shed)

    threads = [threading.Thread(target=reader) for _ in range(READERS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60.0)
        assert not thread.is_alive()

    total = READERS * attempts_per_thread
    assert sum(served) + sum(shed) == total
    health = service.health()
    assert health["requests_admitted_total"] == sum(served)
    assert health["requests_shed_total"] == sum(shed)


def test_batches_behind_tracks_queue_exactly(stream):
    base, batches = stream
    breaker = CircuitBreaker(
        failure_threshold=1,
        cooldown=RetryPolicy(max_retries=10, base_delay=3600.0,
                             max_delay=3600.0, jitter=0.0))
    plan = FaultPlan().crash_batch(0, times=100)
    service = RankingService(LiveRanker(base), breaker=breaker,
                             fault_plan=plan, max_batch_attempts=100)
    for number, batch in enumerate(batches[:3], start=1):
        service.ingest(batch)
        assert service.batches_behind() == number
        assert service.health()["batches_behind"] == number
        assert service.top(3).batches_behind == number
    assert service.snapshot().epoch == 0
