"""serve-load: sustained QPS over the sharded gateway + CLI."""

import json

import pytest

from repro.cli import main
from repro.data.generator import GeneratorConfig, generate_dataset
from repro.serve import run_load

pytestmark = pytest.mark.serve


@pytest.fixture(scope="module")
def load_dataset():
    config = GeneratorConfig(num_articles=150, num_venues=5,
                             num_authors=40, start_year=2000,
                             end_year=2010, seed=17)
    return generate_dataset(config)


@pytest.fixture(scope="module")
def dataset_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("serve-load") / "ds.jsonl"
    assert main(["generate", str(path), "--articles", "150",
                 "--venues", "5", "--authors", "40", "--seed", "17"]) == 0
    return path


class TestRunLoad:
    def test_clean_run_is_bit_exact_and_healthy(self, load_dataset):
        report = run_load(load_dataset, num_shards=3, batches=3,
                          batch_size=10, readers=2, queries=15)
        assert report.status == "ok"
        assert report.merge_mismatches == 0
        assert report.queries_failed == 0
        assert report.shards_missing == 0
        assert report.queries_total > 0
        assert report.board_epoch == 3
        assert report.health["status"] == "fresh"
        assert report.qps > 0
        assert report.p99_ms >= report.p50_ms >= 0

    def test_faulted_run_degrades_then_repairs(self, load_dataset):
        # Poison the *final* publish: a poisoned slice is retried on
        # the next clean publish, so only a last-epoch fault is still
        # visible when post-run health is sampled.
        report = run_load(load_dataset, num_shards=2, batches=2,
                          batch_size=10, readers=1, queries=8,
                          poison_shard=1, fault_epoch=2)
        assert report.status == "ok"
        # The fault was visible while live ...
        assert report.degraded_during == [1]
        # ... and repair() restored parity: nothing missing, bit-exact.
        assert report.shards_missing == 0
        assert report.merge_mismatches == 0
        assert report.health["status"] == "fresh"

    def test_to_report_carries_gated_metrics(self, load_dataset):
        report = run_load(load_dataset, num_shards=2, batches=1,
                          batch_size=8, readers=1, queries=5)
        run_report = report.to_report()
        metrics = run_report.metrics
        for key in ("num_shards", "merge_mismatches", "queries_failed",
                    "shards_missing", "board_epoch", "queries_total",
                    "p50_ms", "p99_ms", "status"):
            assert key in metrics, key
        assert metrics["merge_mismatches"] == 0
        assert metrics["status"] == "ok"

    def test_render_mentions_parity_and_qps(self, load_dataset):
        report = run_load(load_dataset, num_shards=2, batches=1,
                          batch_size=8, readers=1, queries=5)
        text = report.render()
        assert "qps" in text
        assert "mismatch(es)" in text
        assert "# run" not in text  # clean runs omit the status line


class TestCli:
    def test_serve_load_prints_report(self, dataset_path, capsys):
        assert main(["serve-load", str(dataset_path), "--shards", "2",
                     "--batches", "2", "--batch-size", "8",
                     "--readers", "1", "--queries", "5"]) == 0
        out = capsys.readouterr().out
        assert "# serve-load:" in out
        assert "throughput" in out

    def test_serve_load_writes_artifacts(self, dataset_path, tmp_path,
                                         capsys):
        artifact = tmp_path / "load.json"
        run_report = tmp_path / "report.json"
        assert main(["serve-load", str(dataset_path), "--shards", "2",
                     "--batches", "2", "--batch-size", "8",
                     "--readers", "1", "--queries", "5",
                     "--crash-shard", "1",
                     "--json", str(artifact),
                     "--report", str(run_report)]) == 0
        capsys.readouterr()
        payload = json.loads(artifact.read_text())
        assert payload["status"] == "ok"
        assert payload["degraded_during"] == [1]
        assert payload["shards_missing"] == 0
        gated = json.loads(run_report.read_text())
        assert gated["metrics"]["merge_mismatches"] == 0
