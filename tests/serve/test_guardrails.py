"""Publish guardrails: the checks a candidate must pass pre-swap."""

import time

import numpy as np
import pytest
from dataclasses import replace

from repro.errors import ConfigError
from repro.core.model import ArticleRanker
from repro.query import RankIndex
from repro.serve import (GuardrailPolicy, Snapshot, validate_candidate,
                         validate_shard_slice)

pytestmark = pytest.mark.serve


@pytest.fixture()
def ranked(tiny_dataset):
    result = ArticleRanker().rank(tiny_dataset)
    snapshot = Snapshot(index=RankIndex(tiny_dataset, result.by_id()),
                        ranking=result, epoch=0, batches_applied=0,
                        published_at=time.time())
    return tiny_dataset, result, snapshot


class TestPolicyValidation:
    def test_negative_mass_tolerance_rejected(self):
        with pytest.raises(ConfigError, match="mass_tolerance"):
            GuardrailPolicy(mass_tolerance=-0.1)

    def test_churn_top_k_must_be_positive(self):
        with pytest.raises(ConfigError, match="churn_top_k"):
            GuardrailPolicy(churn_top_k=0)

    def test_max_churn_range(self):
        with pytest.raises(ConfigError, match="max_churn"):
            GuardrailPolicy(max_churn=1.5)

    def test_negative_mass_floor_rejected(self):
        with pytest.raises(ConfigError, match="mass_floor"):
            GuardrailPolicy(mass_floor=-1e-9)


class TestChecks:
    def test_clean_candidate_passes(self, ranked):
        dataset, result, snapshot = ranked
        assert validate_candidate(GuardrailPolicy(), dataset, result,
                                  previous=snapshot) == []

    def test_bootstrap_without_previous_passes(self, ranked):
        dataset, result, _ = ranked
        assert validate_candidate(GuardrailPolicy(), dataset,
                                  result, previous=None) == []

    def test_nan_scores_vetoed(self, ranked):
        dataset, result, snapshot = ranked
        scores = result.scores.copy()
        scores[1] = np.nan
        bad = replace(result, scores=scores)
        violations = validate_candidate(GuardrailPolicy(), dataset, bad,
                                        previous=snapshot)
        assert len(violations) == 1
        assert "non-finite" in violations[0]

    def test_inf_scores_vetoed(self, ranked):
        dataset, result, _ = ranked
        scores = result.scores.copy()
        scores[0] = np.inf
        bad = replace(result, scores=scores)
        assert any("non-finite" in v for v in validate_candidate(
            GuardrailPolicy(), dataset, bad, previous=None))

    def test_coverage_mismatch_vetoed(self, ranked):
        dataset, result, snapshot = ranked
        trimmed = replace(result, node_ids=result.node_ids[:-1],
                          scores=result.scores[:-1])
        violations = validate_candidate(GuardrailPolicy(), dataset,
                                        trimmed, previous=snapshot)
        assert any("coverage" in v for v in violations)

    def test_wrong_ids_vetoed_even_with_right_count(self, ranked):
        dataset, result, snapshot = ranked
        swapped = replace(result,
                          node_ids=result.node_ids + 1000)
        violations = validate_candidate(GuardrailPolicy(), dataset,
                                        swapped, previous=snapshot)
        assert any("coverage" in v for v in violations)

    def test_score_mass_drift_vetoed(self, ranked):
        dataset, result, snapshot = ranked
        inflated = replace(result, scores=result.scores * 100.0)
        violations = validate_candidate(
            GuardrailPolicy(mass_tolerance=0.5), dataset, inflated,
            previous=snapshot)
        assert any("score mass" in v for v in violations)

    def test_mass_drift_within_tolerance_passes(self, ranked):
        dataset, result, snapshot = ranked
        nudged = replace(result, scores=result.scores * 1.01)
        assert validate_candidate(
            GuardrailPolicy(mass_tolerance=0.5), dataset, nudged,
            previous=snapshot) == []

    def test_top_k_churn_vetoed(self, ranked):
        dataset, result, snapshot = ranked
        # Invert the ranking: the old top-2 leave the new top-2.
        inverted = replace(result, scores=result.scores.max()
                           - result.scores)
        policy = GuardrailPolicy(mass_tolerance=10.0, churn_top_k=2,
                                 max_churn=0.0)
        violations = validate_candidate(policy, dataset, inverted,
                                        previous=snapshot)
        assert any("churn" in v for v in violations)

    def test_churn_disabled_at_max_churn_one(self, ranked):
        dataset, result, snapshot = ranked
        inverted = replace(result, scores=result.scores.max()
                           - result.scores)
        policy = GuardrailPolicy(mass_tolerance=10.0, churn_top_k=2,
                                 max_churn=1.0)
        assert validate_candidate(policy, dataset, inverted,
                                  previous=snapshot) == []


class TestMassDrift:
    """The total-mass drift check: relative bound + absolute floor."""

    def test_near_zero_mass_passes_via_absolute_floor(self):
        """A tiny graph's mass wobble is numerically irrelevant: the
        relative bound alone would veto (0 expected mass → 0 bound),
        the absolute floor lets it through."""
        prev = np.zeros(3)
        new = np.full(3, 1e-8)
        assert validate_shard_slice(
            GuardrailPolicy(), np.arange(3), np.arange(3), new,
            previous_scores=prev) == []

    def test_large_graph_relative_drift_vetoed(self):
        prev = np.full(1000, 1.0)
        new = np.full(1000, 1.6)  # +60% mass, tolerance is 50%
        violations = validate_shard_slice(
            GuardrailPolicy(), np.arange(1000), np.arange(1000), new,
            previous_scores=prev)
        assert any("score mass" in v for v in violations)

    def test_growth_scales_expected_mass(self):
        """Doubling the corpus with same-mass articles is growth, not
        drift — the expected mass scales with the size ratio."""
        prev = np.full(5, 0.2)
        new_ids = np.arange(10)
        new = np.full(10, 0.2)
        assert validate_shard_slice(
            GuardrailPolicy(mass_tolerance=0.01), new_ids, new_ids,
            new, previous_scores=prev) == []


class TestShardSlice:
    def test_clean_slice_passes(self):
        ids = np.array([0, 2, 4])
        assert validate_shard_slice(GuardrailPolicy(), ids, ids,
                                    np.array([0.1, 0.2, 0.3])) == []

    def test_nan_slice_vetoed_first(self):
        ids = np.array([0, 2])
        violations = validate_shard_slice(
            GuardrailPolicy(), ids, ids, np.array([0.1, np.nan]))
        assert len(violations) == 1
        assert "non-finite" in violations[0]

    def test_misaligned_slice_vetoed(self):
        violations = validate_shard_slice(
            GuardrailPolicy(), np.array([0, 2]), np.array([0, 2]),
            np.array([0.1]))
        assert any("misaligned" in v for v in violations)

    def test_coverage_against_owned_ids(self):
        violations = validate_shard_slice(
            GuardrailPolicy(), np.array([0, 2, 4]), np.array([0, 2]),
            np.array([0.1, 0.2]))
        assert any("coverage" in v for v in violations)
