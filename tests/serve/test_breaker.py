"""CircuitBreaker state machine under a fake clock (no sleeping)."""

import pytest

from repro.errors import ConfigError
from repro.obs import Observability
from repro.resilience import RetryPolicy
from repro.serve import CLOSED, HALF_OPEN, OPEN, STATE_CODES, CircuitBreaker

pytestmark = pytest.mark.serve

#: Deterministic cooldowns: 0.1, 0.2, 0.4, ... seconds, no jitter.
COOLDOWN = RetryPolicy(max_retries=1_000, base_delay=0.1, max_delay=30.0,
                       jitter=0.0)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def breaker(clock):
    return CircuitBreaker(failure_threshold=2, cooldown=COOLDOWN,
                          clock=clock)


class TestValidation:
    def test_threshold_must_be_positive(self):
        with pytest.raises(ConfigError, match="failure_threshold"):
            CircuitBreaker(failure_threshold=0)


class TestClosed:
    def test_starts_closed_and_allows(self, breaker):
        assert breaker.state == CLOSED
        assert breaker.allow()
        assert breaker.cooldown_remaining == 0.0

    def test_failures_below_threshold_stay_closed(self, breaker):
        breaker.record_failure()
        assert breaker.state == CLOSED
        assert breaker.consecutive_failures == 1
        assert breaker.allow()

    def test_success_resets_consecutive_count(self, breaker):
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED  # never reached 2 in a row


class TestTrip:
    def test_threshold_failures_trip_open(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.opened_total == 1
        assert breaker.cooldown_remaining == pytest.approx(0.1)


class TestHalfOpen:
    def _trip(self, breaker):
        breaker.record_failure()
        breaker.record_failure()

    def test_cooldown_elapse_promotes_to_half_open(self, breaker, clock):
        self._trip(breaker)
        clock.advance(0.11)
        assert breaker.state == HALF_OPEN

    def test_single_probe_slot(self, breaker, clock):
        self._trip(breaker)
        clock.advance(0.11)
        assert breaker.allow()       # the probe
        assert not breaker.allow()   # everyone else waits for its outcome

    def test_probe_success_closes_and_resets_backoff(self, breaker,
                                                     clock):
        self._trip(breaker)
        clock.advance(0.11)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()
        # Backoff schedule was reset: the next trip waits base_delay
        # again, not the doubled follow-up.
        self._trip(breaker)
        assert breaker.cooldown_remaining == pytest.approx(0.1)

    def test_probe_failure_reopens_with_longer_cooldown(self, breaker,
                                                        clock):
        self._trip(breaker)
        clock.advance(0.11)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.opened_total == 2
        assert breaker.cooldown_remaining == pytest.approx(0.2)
        # And the probe slot is usable again after the new cooldown.
        clock.advance(0.21)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED


class TestObservability:
    def test_transitions_recorded(self, clock):
        obs = Observability("breaker-test")
        breaker = CircuitBreaker(failure_threshold=1, cooldown=COOLDOWN,
                                 clock=clock, obs=obs)
        breaker.record_failure()
        clock.advance(0.11)
        assert breaker.state == HALF_OPEN
        gauge = obs.metrics.gauge("repro_serve_breaker_state")
        assert gauge.value() == STATE_CODES[HALF_OPEN]
        spans = [span for span in obs.tracer.export()
                 if span["name"] == "serve.breaker"]
        transitions = [(span["attributes"]["from_state"],
                        span["attributes"]["to_state"])
                       for span in spans]
        assert ("closed", "open") in transitions
        assert ("open", "half_open") in transitions

    def test_state_codes_are_stable(self):
        assert STATE_CODES == {"closed": 0, "half_open": 1, "open": 2}
