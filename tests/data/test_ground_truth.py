"""Ground-truth builder tests."""

import pytest

from repro.errors import DatasetError
from repro.data.ground_truth import (
    award_list,
    build_ground_truth,
    pairwise_judgments,
)
from repro.data.schema import Article, ScholarlyDataset


class TestPairwiseJudgments:
    def test_pairs_ordered_by_quality(self, small_dataset):
        pairs = pairwise_judgments(small_dataset, num_pairs=200, seed=1)
        assert len(pairs) == 200
        for better, worse in pairs:
            assert small_dataset.articles[better].quality \
                >= small_dataset.articles[worse].quality

    def test_min_gap_respected(self, small_dataset):
        pairs = pairwise_judgments(small_dataset, num_pairs=100,
                                   min_gap=0.6, seed=1)
        for better, worse in pairs:
            qb = small_dataset.articles[better].quality
            qw = small_dataset.articles[worse].quality
            assert (qb - qw) / qb >= 0.6

    def test_same_era_window(self, small_dataset):
        pairs = pairwise_judgments(small_dataset, num_pairs=100,
                                   same_era_window=2, seed=1)
        for a, b in pairs:
            assert abs(small_dataset.articles[a].year
                       - small_dataset.articles[b].year) <= 2

    def test_deterministic(self, small_dataset):
        a = pairwise_judgments(small_dataset, num_pairs=50, seed=7)
        b = pairwise_judgments(small_dataset, num_pairs=50, seed=7)
        assert a == b

    def test_impossible_gap_raises(self, small_dataset):
        with pytest.raises(DatasetError, match="judgable"):
            pairwise_judgments(small_dataset, num_pairs=100,
                               min_gap=0.999999, seed=1)

    def test_needs_two_articles(self):
        dataset = ScholarlyDataset()
        dataset.add_article(Article(id=1, title="a", year=2000,
                                    quality=1.0))
        with pytest.raises(DatasetError):
            pairwise_judgments(dataset, num_pairs=10)

    def test_zero_pairs_rejected(self, small_dataset):
        with pytest.raises(DatasetError):
            pairwise_judgments(small_dataset, num_pairs=0)


class TestAwardList:
    def test_only_old_enough_articles(self, small_dataset):
        _, max_year = small_dataset.year_range()
        winners = award_list(small_dataset, per_year=2, min_age=5)
        for winner in winners:
            assert small_dataset.articles[winner].year <= max_year - 5

    def test_per_year_cap(self, small_dataset):
        winners = award_list(small_dataset, per_year=2, min_age=5)
        by_year = {}
        for winner in winners:
            year = small_dataset.articles[winner].year
            by_year[year] = by_year.get(year, 0) + 1
        assert all(count <= 2 for count in by_year.values())

    def test_winners_are_top_quality(self, tiny_dataset):
        winners = award_list(tiny_dataset, per_year=1, min_age=0,
                             observation_year=2010)
        # One winner per populated year; each must be that year's best.
        for winner in winners:
            year = tiny_dataset.articles[winner].year
            best = max((a for a in tiny_dataset.articles.values()
                        if a.year == year), key=lambda a: a.quality)
            assert winner == best.id

    def test_requires_quality(self):
        dataset = ScholarlyDataset()
        dataset.add_article(Article(id=1, title="a", year=2000))
        with pytest.raises(DatasetError):
            award_list(dataset, min_age=0)

    def test_per_year_positive(self, tiny_dataset):
        with pytest.raises(DatasetError):
            award_list(tiny_dataset, per_year=0)


class TestBundle:
    def test_build_ground_truth(self, small_dataset):
        truth = build_ground_truth(small_dataset, num_pairs=100, seed=3)
        assert len(truth.pairs) == 100
        assert len(truth.awards) > 0
        assert len(truth.quality_by_id) == small_dataset.num_articles

    def test_quality_map_matches_articles(self, small_dataset):
        truth = build_ground_truth(small_dataset, num_pairs=50, seed=3)
        for article_id, quality in list(truth.quality_by_id.items())[:20]:
            assert small_dataset.articles[article_id].quality == quality
