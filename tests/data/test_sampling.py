"""Dataset sampler tests."""

import pytest

from repro.errors import DatasetError
from repro.data.sampling import (
    forest_fire_sample,
    random_article_sample,
    snowball_sample,
)

SAMPLERS = [random_article_sample, snowball_sample, forest_fire_sample]


class TestCommonContract:
    @pytest.mark.parametrize("sampler", SAMPLERS,
                             ids=[s.__name__ for s in SAMPLERS])
    def test_size_and_consistency(self, small_dataset, sampler):
        sample = sampler(small_dataset, 200, seed=1)
        assert sample.num_articles == 200
        assert sample.validate(strict=True) == []
        for article_id, article in sample.articles.items():
            original = small_dataset.articles[article_id]
            assert set(article.references) <= set(original.references)
            assert article.author_ids == original.author_ids

    @pytest.mark.parametrize("sampler", SAMPLERS,
                             ids=[s.__name__ for s in SAMPLERS])
    def test_deterministic(self, small_dataset, sampler):
        a = sampler(small_dataset, 150, seed=5)
        b = sampler(small_dataset, 150, seed=5)
        assert set(a.articles) == set(b.articles)

    @pytest.mark.parametrize("sampler", SAMPLERS,
                             ids=[s.__name__ for s in SAMPLERS])
    def test_size_validation(self, small_dataset, sampler):
        with pytest.raises(DatasetError):
            sampler(small_dataset, 0)
        with pytest.raises(DatasetError):
            sampler(small_dataset, small_dataset.num_articles + 1)

    @pytest.mark.parametrize("sampler", SAMPLERS,
                             ids=[s.__name__ for s in SAMPLERS])
    def test_full_size_sample(self, small_dataset, sampler):
        sample = sampler(small_dataset, small_dataset.num_articles,
                         seed=1)
        assert sample.num_articles == small_dataset.num_articles
        assert sample.num_citations == small_dataset.num_citations


class TestStructuralDifferences:
    def test_topology_aware_samplers_keep_more_edges(self, small_dataset):
        size = 300
        random_edges = random_article_sample(
            small_dataset, size, seed=2).num_citations
        snowball_edges = snowball_sample(
            small_dataset, size, seed=2).num_citations
        fire_edges = forest_fire_sample(
            small_dataset, size, seed=2).num_citations
        assert snowball_edges > random_edges
        assert fire_edges > random_edges

    def test_snowball_seeds_respected(self, small_dataset):
        seed_id = sorted(small_dataset.articles)[10]
        sample = snowball_sample(small_dataset, 50, seeds=[seed_id],
                                 seed=0)
        assert seed_id in sample.articles

    def test_snowball_unknown_seed(self, small_dataset):
        with pytest.raises(DatasetError):
            snowball_sample(small_dataset, 50, seeds=[10**9])

    def test_forest_fire_probability_validated(self, small_dataset):
        with pytest.raises(DatasetError):
            forest_fire_sample(small_dataset, 50, burn_probability=0.0)
        with pytest.raises(DatasetError):
            forest_fire_sample(small_dataset, 50, burn_probability=1.0)

    def test_samples_are_rankable(self, small_dataset):
        from repro.core.model import ArticleRanker

        sample = forest_fire_sample(small_dataset, 400, seed=3)
        result = ArticleRanker().rank(sample)
        assert len(result.scores) == 400
