"""AMiner text-format parser/writer tests."""

import pytest

from repro.errors import ParseError
from repro.data.aminer import parse_aminer, write_aminer

SAMPLE = """\
#*Foundations of Ranking
#@Ada Lovelace;Bob Noyce
#t1998
#cVLDB
#index0

#*A Follow-up
#@Ada Lovelace
#t2001
#cSIGMOD
#index1
#%0
#!This abstract is ignored entirely.

#*No Venue Paper
#t2003
#index2
#%0
#%1
"""


class TestParse:
    @pytest.fixture()
    def dataset(self, tmp_path):
        path = tmp_path / "aminer.txt"
        path.write_text(SAMPLE)
        return parse_aminer(path)

    def test_articles(self, dataset):
        assert dataset.num_articles == 3
        assert dataset.articles[0].title == "Foundations of Ranking"
        assert dataset.articles[0].year == 1998
        assert dataset.articles[1].references == (0,)
        assert dataset.articles[2].references == (0, 1)

    def test_authors_shared_by_name(self, dataset):
        ada = dataset.articles[0].author_ids[0]
        assert dataset.articles[1].author_ids == (ada,)
        assert dataset.num_authors == 2

    def test_venues_by_name(self, dataset):
        assert dataset.num_venues == 2
        venue = dataset.articles[0].venue_id
        assert dataset.venues[venue].name == "VLDB"
        assert dataset.articles[2].venue_id is None

    def test_no_trailing_blank_line(self, tmp_path):
        path = tmp_path / "aminer.txt"
        path.write_text("#*Solo\n#t2000\n#index7")
        dataset = parse_aminer(path)
        assert dataset.num_articles == 1
        assert 7 in dataset.articles

    def test_missing_blank_separator(self, tmp_path):
        # A new #* without a blank line must still close the record.
        path = tmp_path / "aminer.txt"
        path.write_text("#*One\n#t2000\n#index1\n#*Two\n#t2001\n#index2\n")
        dataset = parse_aminer(path)
        assert dataset.num_articles == 2

    def test_empty_year_defaults_to_zero(self, tmp_path):
        path = tmp_path / "aminer.txt"
        path.write_text("#*X\n#t\n#index1\n")
        assert parse_aminer(path).articles[1].year == 0


class TestParseErrors:
    def test_missing_index(self, tmp_path):
        path = tmp_path / "aminer.txt"
        path.write_text("#*X\n#t2000\n\n")
        with pytest.raises(ParseError, match="no #index"):
            parse_aminer(path)

    def test_bad_year(self, tmp_path):
        path = tmp_path / "aminer.txt"
        path.write_text("#*X\n#ttwenty\n#index1\n")
        with pytest.raises(ParseError, match="bad year"):
            parse_aminer(path)

    def test_bad_reference(self, tmp_path):
        path = tmp_path / "aminer.txt"
        path.write_text("#*X\n#t2000\n#index1\n#%abc\n")
        with pytest.raises(ParseError, match="bad reference"):
            parse_aminer(path)

    def test_unrecognized_line(self, tmp_path):
        path = tmp_path / "aminer.txt"
        path.write_text("#*X\n#t2000\n#index1\nrogue line\n")
        with pytest.raises(ParseError, match="unrecognized"):
            parse_aminer(path)


class TestRoundTrip:
    def test_tiny_dataset(self, tiny_dataset, tmp_path):
        path = tmp_path / "out.txt"
        write_aminer(tiny_dataset, path)
        loaded = parse_aminer(path)
        assert loaded.num_articles == tiny_dataset.num_articles
        assert loaded.num_citations == tiny_dataset.num_citations
        for article_id, original in tiny_dataset.articles.items():
            parsed = loaded.articles[article_id]
            assert parsed.title == original.title
            assert parsed.year == original.year
            assert parsed.references == original.references

    def test_generated_dataset(self, small_dataset, tmp_path):
        path = tmp_path / "out.txt"
        write_aminer(small_dataset, path)
        loaded = parse_aminer(path)
        assert loaded.num_articles == small_dataset.num_articles
        assert loaded.num_citations == small_dataset.num_citations
        assert loaded.num_venues == small_dataset.num_venues
