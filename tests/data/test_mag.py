"""MAG TSV directory parser/writer tests."""

import pytest

from repro.errors import ParseError
from repro.data.mag import (
    AUTHORS_FILE,
    AUTHORSHIP_FILE,
    PAPERS_FILE,
    REFERENCES_FILE,
    VENUES_FILE,
    parse_mag_directory,
    write_mag_directory,
)


def write_minimal(directory):
    (directory / PAPERS_FILE).write_text(
        "1\tFirst\t2000\t10\n"
        "2\tSecond\t2005\t\n"
        "3\tThird\t2008\t11\n")
    (directory / REFERENCES_FILE).write_text("2\t1\n3\t1\n3\t2\n")
    (directory / AUTHORSHIP_FILE).write_text("1\t100\n2\t100\n2\t101\n")
    (directory / VENUES_FILE).write_text("10\tVLDB\n11\tICDE\n")
    (directory / AUTHORS_FILE).write_text("100\tAda\n101\tBob\n")


class TestParse:
    def test_full_directory(self, tmp_path):
        write_minimal(tmp_path)
        dataset = parse_mag_directory(tmp_path)
        assert dataset.num_articles == 3
        assert dataset.articles[2].venue_id is None
        assert dataset.articles[3].references == (1, 2)
        assert dataset.articles[2].author_ids == (100, 101)
        assert dataset.venues[10].name == "VLDB"
        assert dataset.authors[101].name == "Bob"

    def test_optional_files_missing(self, tmp_path):
        (tmp_path / PAPERS_FILE).write_text("1\tOnly\t2000\t5\n")
        dataset = parse_mag_directory(tmp_path)
        assert dataset.num_articles == 1
        assert dataset.venues[5].name == "venue-5"
        assert dataset.num_authors == 0

    def test_missing_papers_file(self, tmp_path):
        with pytest.raises(ParseError, match="missing Papers.txt"):
            parse_mag_directory(tmp_path)

    def test_bad_paper_id(self, tmp_path):
        (tmp_path / PAPERS_FILE).write_text("abc\tX\t2000\t\n")
        with pytest.raises(ParseError, match="bad paper id"):
            parse_mag_directory(tmp_path)

    def test_bad_year(self, tmp_path):
        (tmp_path / PAPERS_FILE).write_text("1\tX\tsoon\t\n")
        with pytest.raises(ParseError, match="bad year"):
            parse_mag_directory(tmp_path)

    def test_short_reference_row(self, tmp_path):
        (tmp_path / PAPERS_FILE).write_text("1\tX\t2000\t\n")
        (tmp_path / REFERENCES_FILE).write_text("1\n")
        with pytest.raises(ParseError, match="expected 2 columns"):
            parse_mag_directory(tmp_path)

    def test_titles_may_be_empty(self, tmp_path):
        (tmp_path / PAPERS_FILE).write_text("1\t\t2000\t\n")
        dataset = parse_mag_directory(tmp_path)
        assert dataset.articles[1].title == ""


class TestRoundTrip:
    def test_tiny_dataset(self, tiny_dataset, tmp_path):
        write_mag_directory(tiny_dataset, tmp_path / "mag")
        loaded = parse_mag_directory(tmp_path / "mag")
        assert loaded.num_articles == tiny_dataset.num_articles
        assert loaded.num_citations == tiny_dataset.num_citations
        assert loaded.num_venues == tiny_dataset.num_venues
        assert loaded.num_authors == tiny_dataset.num_authors
        for article_id, original in tiny_dataset.articles.items():
            parsed = loaded.articles[article_id]
            assert parsed.year == original.year
            assert set(parsed.references) == set(original.references)
            assert set(parsed.author_ids) == set(original.author_ids)

    def test_generated_dataset(self, small_dataset, tmp_path):
        write_mag_directory(small_dataset, tmp_path / "mag")
        loaded = parse_mag_directory(tmp_path / "mag")
        assert loaded.num_articles == small_dataset.num_articles
        assert loaded.num_citations == small_dataset.num_citations
