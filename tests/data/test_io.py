"""JSONL round-trip and parse-error tests."""

import pytest

from repro.errors import ParseError
from repro.data.io import load_dataset_jsonl, save_dataset_jsonl


class TestRoundTrip:
    def test_plain_jsonl(self, tiny_dataset, tmp_path):
        path = tmp_path / "data.jsonl"
        save_dataset_jsonl(tiny_dataset, path)
        loaded = load_dataset_jsonl(path)
        assert loaded.name == tiny_dataset.name
        assert loaded.articles == tiny_dataset.articles
        assert loaded.venues == tiny_dataset.venues
        assert loaded.authors == tiny_dataset.authors

    def test_gzip_jsonl(self, tiny_dataset, tmp_path):
        path = tmp_path / "data.jsonl.gz"
        save_dataset_jsonl(tiny_dataset, path)
        loaded = load_dataset_jsonl(path)
        assert loaded.articles == tiny_dataset.articles

    def test_generated_dataset_roundtrip(self, small_dataset, tmp_path):
        path = tmp_path / "gen.jsonl"
        save_dataset_jsonl(small_dataset, path)
        loaded = load_dataset_jsonl(path)
        assert loaded.num_articles == small_dataset.num_articles
        assert loaded.num_citations == small_dataset.num_citations
        sample_id = next(iter(small_dataset.articles))
        assert loaded.articles[sample_id] == \
            small_dataset.articles[sample_id]


class TestParseErrors:
    def test_invalid_json_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "dataset", "name": "x"}\nnot json\n')
        with pytest.raises(ParseError, match="bad.jsonl:2"):
            load_dataset_jsonl(path)

    def test_unknown_kind(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "mystery"}\n')
        with pytest.raises(ParseError, match="unknown record kind"):
            load_dataset_jsonl(path)

    def test_missing_field(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "article", "id": 1}\n')
        with pytest.raises(ParseError, match="missing field"):
            load_dataset_jsonl(path)

    def test_blank_lines_tolerated(self, tiny_dataset, tmp_path):
        path = tmp_path / "data.jsonl"
        save_dataset_jsonl(tiny_dataset, path)
        path.write_text(path.read_text() + "\n\n")
        loaded = load_dataset_jsonl(path)
        assert loaded.num_articles == tiny_dataset.num_articles
