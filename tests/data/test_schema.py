"""Schema and dataset-container tests."""

import pytest

from repro.errors import DatasetError
from repro.data.schema import Article, Author, ScholarlyDataset, Venue


class TestEntities:
    def test_article_tuples_coerced(self):
        article = Article(id=1, title="t", year=2000,
                          author_ids=[1, 2], references=[3])
        assert article.author_ids == (1, 2)
        assert article.references == (3,)

    def test_duplicate_article_rejected(self, tiny_dataset):
        with pytest.raises(DatasetError):
            tiny_dataset.add_article(Article(id=0, title="dup", year=2001))

    def test_duplicate_venue_rejected(self, tiny_dataset):
        with pytest.raises(DatasetError):
            tiny_dataset.add_venue(Venue(id=0, name="dup"))

    def test_duplicate_author_rejected(self, tiny_dataset):
        with pytest.raises(DatasetError):
            tiny_dataset.add_author(Author(id=0, name="dup"))


class TestCounts:
    def test_sizes(self, tiny_dataset):
        assert tiny_dataset.num_articles == 5
        assert tiny_dataset.num_venues == 2
        assert tiny_dataset.num_authors == 3
        assert tiny_dataset.num_citations == 5

    def test_year_range(self, tiny_dataset):
        assert tiny_dataset.year_range() == (2000, 2010)

    def test_year_range_empty_raises(self):
        with pytest.raises(DatasetError):
            ScholarlyDataset().year_range()

    def test_citations_ignore_dangling(self):
        dataset = ScholarlyDataset()
        dataset.add_article(Article(id=1, title="a", year=2000,
                                    references=(99,)))
        assert dataset.num_citations == 0


class TestValidation:
    def test_valid_dataset(self, tiny_dataset):
        assert tiny_dataset.validate(strict=True) == []
        tiny_dataset.check(strict=True)

    def test_unknown_venue_reported(self):
        dataset = ScholarlyDataset()
        dataset.add_article(Article(id=1, title="a", year=2000,
                                    venue_id=42))
        problems = dataset.validate()
        assert any("unknown venue" in p for p in problems)

    def test_unknown_author_reported(self):
        dataset = ScholarlyDataset()
        dataset.add_article(Article(id=1, title="a", year=2000,
                                    author_ids=(9,)))
        assert any("unknown author" in p for p in dataset.validate())

    def test_self_citation_reported(self):
        dataset = ScholarlyDataset()
        dataset.add_article(Article(id=1, title="a", year=2000,
                                    references=(1,)))
        assert any("self-citation" in p for p in dataset.validate())

    def test_dangling_only_strict(self):
        dataset = ScholarlyDataset()
        dataset.add_article(Article(id=1, title="a", year=2000,
                                    references=(5,)))
        assert dataset.validate(strict=False) == []
        assert any("dangling" in p for p in dataset.validate(strict=True))

    def test_check_raises_with_summary(self):
        dataset = ScholarlyDataset(name="broken")
        dataset.add_article(Article(id=1, title="a", year=2000,
                                    venue_id=42))
        with pytest.raises(DatasetError, match="broken"):
            dataset.check()


class TestGraphViews:
    def test_citation_edges_direction(self, tiny_dataset):
        edges = set(tiny_dataset.citation_edges())
        assert (1, 0) in edges  # article 1 cites article 0
        assert (0, 1) not in edges

    def test_citation_graph(self, tiny_dataset):
        graph = tiny_dataset.citation_graph()
        assert graph.num_nodes == 5
        assert graph.num_edges == 5
        assert graph.has_edge(4, 1)

    def test_citation_csr_id_order(self, tiny_dataset):
        csr = tiny_dataset.citation_csr()
        assert csr.node_ids.tolist() == [0, 1, 2, 3, 4]

    def test_dangling_and_self_refs_dropped(self):
        dataset = ScholarlyDataset()
        dataset.add_article(Article(id=1, title="a", year=2000,
                                    references=(1, 99)))
        dataset.add_article(Article(id=2, title="b", year=2001,
                                    references=(1,)))
        graph = dataset.citation_graph()
        assert graph.num_edges == 1

    def test_article_years_alignment(self, tiny_dataset):
        csr = tiny_dataset.citation_csr()
        years = tiny_dataset.article_years(csr)
        assert years.tolist() == [2000, 2003, 2005, 2008, 2010]

    def test_article_qualities(self, tiny_dataset):
        csr = tiny_dataset.citation_csr()
        qualities = tiny_dataset.article_qualities(csr)
        assert qualities.tolist() == [3.0, 2.0, 0.5, 1.0, 1.5]

    def test_missing_quality_raises(self):
        dataset = ScholarlyDataset()
        dataset.add_article(Article(id=1, title="a", year=2000))
        with pytest.raises(DatasetError):
            dataset.article_qualities()


class TestTemporalSlicing:
    def test_snapshot_until_trims_references(self, tiny_dataset):
        snap = tiny_dataset.snapshot_until(2005)
        assert set(snap.articles) == {0, 1, 2}
        assert snap.validate(strict=True) == []
        assert snap.num_citations == 2

    def test_snapshot_restricts_entities(self, tiny_dataset):
        snap = tiny_dataset.snapshot_until(2003)
        assert set(snap.venues) == {0}
        assert set(snap.authors) == {0, 1}

    def test_snapshot_name(self, tiny_dataset):
        assert tiny_dataset.snapshot_until(2005).name == "tiny@2005"
        assert tiny_dataset.snapshot_until(2005, name="x").name == "x"

    def test_articles_in_year(self, tiny_dataset):
        assert [a.id for a in tiny_dataset.articles_in_year(2005)] == [2]
        assert tiny_dataset.articles_in_year(1999) == []

    def test_snapshot_consistent_with_generator(self, small_dataset):
        min_year, max_year = small_dataset.year_range()
        mid = (min_year + max_year) // 2
        snap = small_dataset.snapshot_until(mid)
        assert snap.validate(strict=True) == []
        assert all(a.year <= mid for a in snap.articles.values())
        assert snap.num_articles < small_dataset.num_articles
