"""Tolerant parsing: on_error="quarantine" for AMiner and MAG."""

import pytest

from repro.errors import ConfigError, ParseError
from repro.data.aminer import parse_aminer, write_aminer
from repro.data.mag import parse_mag_directory, write_mag_directory
from repro.data.quarantine import MAX_SAMPLES, ParseReport


GOOD_AMINER = """\
#*First article
#@Ada;Bob
#t2001
#cVLDB
#index1

#*Second article
#t2003
#index2
#%1
"""


def _write(tmp_path, text, name="dump.txt"):
    path = tmp_path / name
    path.write_text(text, encoding="utf-8")
    return path


class TestParseReport:
    def test_counts(self):
        report = ParseReport()
        report.record_ok()
        report.record_error(ValueError("bad"))
        report.record_ok()
        assert (report.records_ok, report.quarantined) == (2, 1)
        assert report.total == 3
        assert not report.clean

    def test_samples_are_capped(self):
        report = ParseReport()
        for index in range(MAX_SAMPLES + 4):
            report.record_error(ValueError(f"bad {index}"))
        assert len(report.samples) == MAX_SAMPLES
        assert report.samples[0] == "bad 0"
        assert f"and {4} more" in report.summary()

    def test_clean_summary_is_one_line(self):
        report = ParseReport()
        report.record_ok()
        assert "\n" not in report.summary()

    def test_explicit_location_kept_and_rendered(self):
        report = ParseReport()
        report.record_error(ValueError("bad year"),
                            location="record 42")
        assert report.locations == ["record 42"]
        assert "[record 42] bad year" in report.summary()

    def test_location_derived_from_parse_error(self):
        report = ParseReport()
        report.record_error(ParseError("bad row", "dump.txt", 317))
        assert report.locations == ["dump.txt:317"]

    def test_unknown_location_falls_back(self):
        report = ParseReport()
        report.record_error(ValueError("mystery"))
        assert report.locations == ["?"]
        # No "[?]" noise in the rendered summary.
        assert "[?]" not in report.summary()
        assert "mystery" in report.summary()

    def test_locations_stay_aligned_with_samples(self):
        report = ParseReport()
        for index in range(MAX_SAMPLES + 2):
            report.record_error(ValueError(f"bad {index}"),
                                location=f"record {index}")
        assert len(report.locations) == len(report.samples) \
            == MAX_SAMPLES
        assert report.locations[-1] == f"record {MAX_SAMPLES - 1}"


class TestOnErrorValidation:
    @pytest.mark.parametrize("parse", ["aminer", "mag"])
    def test_bad_mode_rejected(self, tmp_path, parse):
        with pytest.raises(ConfigError, match="on_error"):
            if parse == "aminer":
                parse_aminer(_write(tmp_path, GOOD_AMINER),
                             on_error="ignore")
            else:
                parse_mag_directory(tmp_path, on_error="ignore")


class TestAminerQuarantine:
    def test_strict_is_default_and_raises(self, tmp_path):
        text = GOOD_AMINER + "\n#*Third\n#tNaN\n#index3\n"
        path = _write(tmp_path, text)
        with pytest.raises(ParseError, match="bad year"):
            parse_aminer(path)

    def test_quarantine_skips_bad_record_keeps_rest(self, tmp_path):
        text = GOOD_AMINER + "\n#*Third\n#tNaN\n#index3\n"
        path = _write(tmp_path, text)
        report = ParseReport()
        dataset = parse_aminer(path, on_error="quarantine",
                               report=report)
        assert sorted(dataset.articles) == [1, 2]
        assert report.records_ok == 2
        assert report.quarantined == 1
        assert "bad year" in report.samples[0]

    def test_record_with_many_bad_lines_counts_once(self, tmp_path):
        text = ("#*Broken\n#tNaN\n#indexNaN\n#%NaN\n\n" + GOOD_AMINER)
        path = _write(tmp_path, text)
        report = ParseReport()
        dataset = parse_aminer(path, on_error="quarantine",
                               report=report)
        assert sorted(dataset.articles) == [1, 2]
        assert report.quarantined == 1

    def test_missing_index_quarantined(self, tmp_path):
        text = "#*No index here\n#t2000\n\n" + GOOD_AMINER
        path = _write(tmp_path, text)
        report = ParseReport()
        dataset = parse_aminer(path, on_error="quarantine",
                               report=report)
        assert sorted(dataset.articles) == [1, 2]
        assert "no #index" in report.samples[0]

    def test_duplicate_id_quarantined(self, tmp_path):
        text = GOOD_AMINER + "\n#*Clone of first\n#t2005\n#index1\n"
        path = _write(tmp_path, text)
        report = ParseReport()
        dataset = parse_aminer(path, on_error="quarantine",
                               report=report)
        assert len(dataset.articles) == 2
        assert dataset.articles[1].title == "First article"
        assert report.quarantined == 1

    def test_clean_roundtrip_reports_clean(self, tmp_path,
                                           tiny_dataset):
        path = tmp_path / "tiny.txt"
        write_aminer(tiny_dataset, path)
        report = ParseReport()
        dataset = parse_aminer(path, on_error="quarantine",
                               report=report)
        assert dataset.num_articles == tiny_dataset.num_articles
        assert report.clean
        assert report.records_ok == tiny_dataset.num_articles


class TestMagQuarantine:
    @pytest.fixture()
    def mag_dir(self, tmp_path, tiny_dataset):
        directory = tmp_path / "mag"
        write_mag_directory(tiny_dataset, directory)
        return directory

    def test_missing_papers_file_fatal_in_both_modes(self, tmp_path):
        with pytest.raises(ParseError, match="Papers.txt"):
            parse_mag_directory(tmp_path, on_error="quarantine")

    def test_bad_paper_rows_quarantined(self, mag_dir, tiny_dataset):
        papers = mag_dir / "Papers.txt"
        content = papers.read_text(encoding="utf-8")
        papers.write_text("not-an-id\tBroken\t2001\t\n"
                          "7\tShort row\n" + content, encoding="utf-8")
        with pytest.raises(ParseError):
            parse_mag_directory(mag_dir)
        report = ParseReport()
        dataset = parse_mag_directory(mag_dir, on_error="quarantine",
                                      report=report)
        assert dataset.num_articles == tiny_dataset.num_articles
        assert report.quarantined == 2
        assert report.records_ok == tiny_dataset.num_articles

    def test_bad_reference_rows_quarantined(self, mag_dir,
                                            tiny_dataset):
        refs = mag_dir / "PaperReferences.txt"
        content = refs.read_text(encoding="utf-8")
        refs.write_text("4\n4\tnope\n" + content, encoding="utf-8")
        report = ParseReport()
        dataset = parse_mag_directory(mag_dir, on_error="quarantine",
                                      report=report)
        assert report.quarantined == 2
        assert dataset.num_citations == tiny_dataset.num_citations

    def test_bad_name_rows_quarantined(self, mag_dir):
        venues = mag_dir / "Venues.txt"
        content = venues.read_text(encoding="utf-8")
        venues.write_text("zzz\tBad venue row\n" + content,
                          encoding="utf-8")
        report = ParseReport()
        dataset = parse_mag_directory(mag_dir, on_error="quarantine",
                                      report=report)
        assert report.quarantined == 1
        assert all(v.name for v in dataset.venues.values())
