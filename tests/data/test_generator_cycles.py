"""Within-year citation (cycle) generation tests."""

import pytest

from repro.errors import ConfigError
from repro.data.generator import GeneratorConfig, generate_dataset
from repro.graph.toposort import is_dag


class TestWithinYearCitations:
    def test_default_is_dag(self, small_dataset):
        assert is_dag(small_dataset.citation_csr())

    def test_positive_mean_creates_same_year_edges(self):
        dataset = generate_dataset(GeneratorConfig(
            num_articles=800, num_venues=8, num_authors=200,
            within_year_mean=1.0, seed=9))
        same_year = sum(
            1 for citing, cited in dataset.citation_edges()
            if dataset.articles[citing].year
            == dataset.articles[cited].year)
        assert same_year > 0

    def test_references_never_point_to_future_years(self):
        dataset = generate_dataset(GeneratorConfig(
            num_articles=800, num_venues=8, num_authors=200,
            within_year_mean=1.0, seed=9))
        for article in dataset.articles.values():
            for ref in article.references:
                assert dataset.articles[ref].year <= article.year

    def test_no_self_citations(self):
        dataset = generate_dataset(GeneratorConfig(
            num_articles=500, num_venues=5, num_authors=100,
            within_year_mean=2.0, seed=3))
        for article in dataset.articles.values():
            assert article.id not in article.references

    def test_validates(self):
        dataset = generate_dataset(GeneratorConfig(
            num_articles=500, num_venues=5, num_authors=100,
            within_year_mean=1.0, seed=3))
        assert dataset.validate(strict=True) == []

    def test_negative_mean_rejected(self):
        with pytest.raises(ConfigError):
            GeneratorConfig(within_year_mean=-0.5)

    def test_model_runs_on_cyclic_corpus(self):
        from repro.core.model import ArticleRanker
        dataset = generate_dataset(GeneratorConfig(
            num_articles=600, num_venues=6, num_authors=150,
            within_year_mean=1.0, seed=5))
        assert not is_dag(dataset.citation_csr())
        result = ArticleRanker().rank(dataset)
        assert result.diagnostics["twpr_converged"]
