"""Synthetic-generator tests: determinism, structure, config validation."""

import pytest

from repro.errors import ConfigError
from repro.data.generator import (
    GeneratorConfig,
    aminer_like_config,
    generate_dataset,
    mag_like_config,
)


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"num_articles": 0},
        {"num_venues": 0},
        {"num_authors": -1},
        {"start_year": 2010, "end_year": 2000},
        {"growth": 0.9},
        {"mean_references": -1.0},
        {"venue_quality_mix": 1.5},
        {"team_size_mean": 0.5},
    ])
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            GeneratorConfig(**kwargs)

    def test_presets_valid(self):
        assert aminer_like_config(scale=5000).num_articles == 5000
        assert mag_like_config(scale=5000).num_articles == 5000


class TestStructure:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_dataset(GeneratorConfig(
            num_articles=1500, num_venues=10, num_authors=300,
            start_year=2000, end_year=2012, seed=5))

    def test_article_count_exact(self, dataset):
        assert dataset.num_articles == 1500

    def test_years_in_range(self, dataset):
        for article in dataset.articles.values():
            assert 2000 <= article.year <= 2012

    def test_ids_are_time_ordered(self, dataset):
        years = [dataset.articles[i].year for i in range(1500)]
        assert years == sorted(years)

    def test_references_point_backward(self, dataset):
        for article in dataset.articles.values():
            for ref in article.references:
                assert dataset.articles[ref].year <= article.year
                assert ref < article.id

    def test_no_duplicate_references(self, dataset):
        for article in dataset.articles.values():
            assert len(set(article.references)) == len(article.references)

    def test_every_article_has_quality_and_venue(self, dataset):
        for article in dataset.articles.values():
            assert article.quality is not None and article.quality > 0
            assert article.venue_id in dataset.venues
            assert len(article.author_ids) >= 1

    def test_validates_strictly(self, dataset):
        assert dataset.validate(strict=True) == []

    def test_cohorts_grow(self, dataset):
        first = len(dataset.articles_in_year(2000))
        last = len(dataset.articles_in_year(2012))
        assert last > first

    def test_in_degree_heavy_tailed(self, dataset):
        graph = dataset.citation_csr()
        in_deg = graph.in_degrees()
        assert in_deg.max() > 20 * max(in_deg.mean(), 1e-9)

    def test_quality_correlates_with_citations(self, dataset):
        from scipy.stats import spearmanr
        graph = dataset.citation_csr()
        rho = spearmanr(dataset.article_qualities(graph),
                        graph.in_degrees()).statistic
        assert 0.1 < rho < 0.9  # informative but noisy, by design


class TestDeterminism:
    def test_same_seed_same_dataset(self):
        config = GeneratorConfig(num_articles=400, num_venues=8,
                                 num_authors=100, seed=3)
        a = generate_dataset(config)
        b = generate_dataset(config)
        assert a.articles == b.articles
        assert a.venues == b.venues
        assert a.authors == b.authors

    def test_different_seed_differs(self):
        base = dict(num_articles=400, num_venues=8, num_authors=100)
        a = generate_dataset(GeneratorConfig(seed=1, **base))
        b = generate_dataset(GeneratorConfig(seed=2, **base))
        assert a.articles != b.articles


class TestEdgeCases:
    def test_single_year(self):
        dataset = generate_dataset(GeneratorConfig(
            num_articles=50, num_venues=3, num_authors=10,
            start_year=2005, end_year=2005, seed=1))
        assert dataset.num_articles == 50
        # Single cohort: nothing to cite.
        assert dataset.num_citations == 0

    def test_zero_references(self):
        dataset = generate_dataset(GeneratorConfig(
            num_articles=100, num_venues=3, num_authors=10,
            mean_references=0.0, seed=1))
        assert dataset.num_citations == 0

    def test_tiny_corpus(self):
        dataset = generate_dataset(GeneratorConfig(
            num_articles=30, num_venues=2, num_authors=5,
            start_year=2000, end_year=2002, seed=1))
        assert dataset.num_articles == 30
        assert dataset.validate(strict=True) == []
