"""Shared fixtures: small graphs and datasets reused across the suite.

The global test-hang cap (``timeout`` in pyproject.toml) is handled in
the repo-root ``conftest.py`` so it also covers benchmark runs.
"""

from __future__ import annotations

import pytest

from repro.data.generator import GeneratorConfig, generate_dataset
from repro.data.schema import Article, Author, ScholarlyDataset, Venue
from repro.graph.digraph import DiGraph


@pytest.fixture(scope="session")
def small_dataset() -> "ScholarlyDataset":
    """A deterministic 1200-article synthetic corpus (session-cached)."""
    config = GeneratorConfig(num_articles=1200, num_venues=12,
                             num_authors=400, start_year=1995,
                             end_year=2014, seed=42)
    return generate_dataset(config)


@pytest.fixture(scope="session")
def medium_dataset() -> "ScholarlyDataset":
    """A 4000-article corpus for statistical assertions (session-cached)."""
    config = GeneratorConfig(num_articles=4000, num_venues=25,
                             num_authors=1200, start_year=1990,
                             end_year=2015, seed=11)
    return generate_dataset(config)


@pytest.fixture()
def diamond_graph() -> DiGraph:
    """1 -> {2, 3} -> 4 (plus 4 dangling): the smallest useful DAG."""
    graph = DiGraph()
    graph.add_edge(1, 2)
    graph.add_edge(1, 3)
    graph.add_edge(2, 4)
    graph.add_edge(3, 4)
    return graph


@pytest.fixture()
def cyclic_graph() -> DiGraph:
    """A 3-cycle with a tail and a dangling sink."""
    graph = DiGraph()
    graph.add_edges([(1, 2), (2, 3), (3, 1), (3, 4), (5, 1)])
    return graph


@pytest.fixture()
def tiny_dataset() -> ScholarlyDataset:
    """Five hand-written articles, two venues, three authors.

    Citation structure (newer cites older):

        2010:a4 -> a1, a2     2008:a3 -> a1     2005:a2 -> a0
        2003:a1 -> a0         2000:a0 (dangling)
    """
    dataset = ScholarlyDataset(name="tiny")
    dataset.add_venue(Venue(id=0, name="VLDB", prestige=0.9))
    dataset.add_venue(Venue(id=1, name="Workshop", prestige=0.2))
    dataset.add_author(Author(id=0, name="Ada"))
    dataset.add_author(Author(id=1, name="Bob"))
    dataset.add_author(Author(id=2, name="Cy"))
    dataset.add_article(Article(id=0, title="Foundations", year=2000,
                                venue_id=0, author_ids=(0,),
                                references=(), quality=3.0))
    dataset.add_article(Article(id=1, title="Extension", year=2003,
                                venue_id=0, author_ids=(0, 1),
                                references=(0,), quality=2.0))
    dataset.add_article(Article(id=2, title="Sidetrack", year=2005,
                                venue_id=1, author_ids=(1,),
                                references=(0,), quality=0.5))
    dataset.add_article(Article(id=3, title="Survey", year=2008,
                                venue_id=0, author_ids=(2,),
                                references=(1,), quality=1.0))
    dataset.add_article(Article(id=4, title="Revival", year=2010,
                                venue_id=1, author_ids=(1, 2),
                                references=(1, 2), quality=1.5))
    return dataset
