"""Repo-root pytest config: fallback for the global test-hang cap.

pyproject.toml sets ``timeout = 120`` for pytest-timeout, but this repo
must also work in offline environments where that plugin is absent.
When it is, the hooks below register the ini key (so pytest does not
warn about it) and enforce the cap with SIGALRM — POSIX main-thread
only, which is exactly where the fault-injection tests that could hang
run. Lives at the root (not ``tests/``) so benchmark runs are covered
too.
"""

from __future__ import annotations

import importlib.util
import signal
import threading

import pytest

_HAVE_PYTEST_TIMEOUT = \
    importlib.util.find_spec("pytest_timeout") is not None


def pytest_addoption(parser):
    if not _HAVE_PYTEST_TIMEOUT:
        parser.addini("timeout", "per-test hang cap in seconds "
                                 "(fallback for pytest-timeout)",
                      default="0")


if not _HAVE_PYTEST_TIMEOUT and hasattr(signal, "SIGALRM"):

    @pytest.hookimpl(hookwrapper=True)
    def pytest_runtest_call(item):
        try:
            seconds = int(float(item.config.getini("timeout") or 0))
        except (TypeError, ValueError):
            seconds = 0
        on_main = threading.current_thread() is threading.main_thread()
        if seconds <= 0 or not on_main:
            yield
            return

        def _expired(signum, frame):
            raise TimeoutError(
                f"test exceeded the {seconds}s global timeout "
                f"(conftest SIGALRM fallback)")

        previous = signal.signal(signal.SIGALRM, _expired)
        signal.alarm(seconds)
        try:
            yield
        finally:
            signal.alarm(0)
            signal.signal(signal.SIGALRM, previous)