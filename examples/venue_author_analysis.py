"""Venue and author analytics on top of the ranking pipeline.

Shows the entity-level outputs the assembled model computes on the way
to article scores: venue importance from the aggregated venue citation
graph, and author importance from authored-article importance.

Run:  python examples/venue_author_analysis.py
"""

import numpy as np

from repro import ArticleRanker, GeneratorConfig, generate_dataset
from repro.core.importance import combine_importance
from repro.core.time_weight import exponential_decay
from repro.core.venue_graph import build_venue_graph, venue_popularity
from repro.core.author_score import author_importance
from repro.ranking.pagerank import pagerank


def main() -> None:
    dataset = generate_dataset(GeneratorConfig(
        num_articles=12_000, num_venues=30, num_authors=3_000,
        start_year=1992, end_year=2015, seed=17))
    _, horizon = dataset.year_range()

    # --- venue level -------------------------------------------------
    decay = exponential_decay(0.1)
    venue_graph = build_venue_graph(dataset, decay=decay)
    prestige = pagerank(venue_graph.graph).scores
    popularity = venue_popularity(dataset, horizon,
                                  exponential_decay(0.4), venue_graph)
    importance = combine_importance(prestige, popularity, theta=0.5,
                                    normalization="rank")

    order = np.argsort(-importance)[:8]
    print("top venues (importance | prestige | decayed citations):")
    for index in order:
        venue_id = int(venue_graph.graph.node_ids[index])
        name = dataset.venues[venue_id].name
        print(f"  {importance[index]:.3f} | {prestige[index]:.4f} | "
              f"{popularity[index]:9.1f} | {name}")

    # --- author level ------------------------------------------------
    result = ArticleRanker().rank(dataset)
    by_id = result.by_id()
    authors = author_importance(dataset, by_id, mode="mean")
    productivity = {author_id: 0 for author_id in dataset.authors}
    for article in dataset.articles.values():
        for author_id in article.author_ids:
            productivity[author_id] += 1

    top_authors = sorted(authors, key=lambda a: -authors[a])[:8]
    print("\ntop authors (mean article importance | #articles):")
    for author_id in top_authors:
        print(f"  {authors[author_id]:.4f} | "
              f"{productivity[author_id]:>3} | "
              f"{dataset.authors[author_id].name}")

    # Sanity: prolific does not automatically mean important.
    most_prolific = max(productivity, key=productivity.get)
    rank_of_prolific = sorted(
        authors, key=lambda a: -authors[a]).index(most_prolific)
    print(f"\nmost prolific author "
          f"({productivity[most_prolific]} articles) ranks "
          f"#{rank_of_prolific + 1} of {len(authors)} by importance")


if __name__ == "__main__":
    main()
