"""Rank a real AMiner citation dump (or a generated stand-in).

Usage:
    python examples/rank_aminer_snapshot.py [path/to/aminer.txt]

Without an argument, the script writes a small AMiner-format file from
the synthetic generator first, so the full pipeline — parse the AMiner
text format, persist into SQLite, rank, compare against baselines —
runs end-to-end offline. Point it at a genuine ``DBLP-Citation-network``
dump and the identical code ranks the real corpus.
"""

import sys
import tempfile
from pathlib import Path

from repro import ArticleRanker
from repro.data.aminer import parse_aminer, write_aminer
from repro.data.generator import aminer_like_config, generate_dataset
from repro.ranking import citation_count, pagerank
from repro.storage import DatasetStore


def ensure_input(argv) -> Path:
    if len(argv) > 1:
        return Path(argv[1])
    path = Path(tempfile.gettempdir()) / "aminer_demo.txt"
    print(f"no input given — writing a synthetic AMiner file to {path}")
    dataset = generate_dataset(aminer_like_config(scale=8_000))
    write_aminer(dataset, path)
    return path


def main() -> None:
    path = ensure_input(sys.argv)
    dataset = parse_aminer(path)
    problems = dataset.validate()
    print(f"parsed {dataset.num_articles} articles "
          f"({dataset.num_citations} resolvable citations, "
          f"{len(problems)} schema problems)")

    # Persist once; re-ranking later skips the parse.
    store_path = Path(tempfile.gettempdir()) / "aminer_demo.db"
    with DatasetStore(store_path) as store:
        store.save_dataset(dataset, overwrite=True)

        result = ArticleRanker().rank(dataset)
        store.save_ranking(dataset.name, "qisar", result.by_id(),
                           overwrite=True)

        graph = dataset.citation_csr()
        ids = [int(i) for i in graph.node_ids]
        store.save_ranking(dataset.name, "pagerank",
                           dict(zip(ids, pagerank(graph).scores)),
                           overwrite=True)
        store.save_ranking(dataset.name, "citations",
                           dict(zip(ids, citation_count(graph))),
                           overwrite=True)

        print(f"\nstored rankings: {store.list_rankings(dataset.name)}")
        print("\nmodel top-5 vs citation-count top-5:")
        model_top = store.top_articles(dataset.name, "qisar", limit=5)
        count_top = store.top_articles(dataset.name, "citations", limit=5)
        for (m_id, m_score), (c_id, c_count) in zip(model_top, count_top):
            m_title = dataset.articles[m_id].title[:32]
            c_title = dataset.articles[c_id].title[:32]
            print(f"  {m_score:.4f} {m_title:<34} || "
                  f"{c_count:6.0f} {c_title}")


if __name__ == "__main__":
    main()
