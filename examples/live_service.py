"""A live ranking service: ingest arrivals, serve filtered top-k.

Combines the three production-facing pieces: :class:`LiveRanker` keeps
the full model fresh under yearly arrival batches (maintaining TWPR
incrementally), :class:`RankIndex` serves filtered top-k reads, and
engine checkpointing survives a restart.

Run:  python examples/live_service.py
"""

import tempfile
from pathlib import Path

from repro import GeneratorConfig, generate_dataset
from repro.engine.live import LiveRanker
from repro.engine.state import load_engine, save_engine
from repro.engine.updates import yearly_updates
from repro.query import RankIndex


def main() -> None:
    dataset = generate_dataset(GeneratorConfig(
        num_articles=8_000, num_venues=25, num_authors=2_000,
        start_year=1998, end_year=2015, seed=23))
    _, max_year = dataset.year_range()
    base, batches = yearly_updates(dataset, max_year - 3)
    print(f"bootstrapping on {base.num_articles} articles; "
          f"{len(batches)} arrival batches queued")

    live = LiveRanker(base, delta_threshold=1e-3)
    for batch in batches:
        result, report = live.apply(batch)
        year = batch.articles[0].year
        index = RankIndex(live.dataset, result.by_id())
        freshest = index.top(3, year_range=(year, year))
        print(f"\n[{year}] +{batch.num_articles} articles "
              f"(affected {report.affected.fraction * 100:.1f}%, "
              f"{report.seconds * 1e3:.0f} ms); best newcomers:")
        for entry in freshest:
            print(f"    #{index.rank_of(entry.article_id):>5} overall | "
                  f"{entry.title}")

    # Serve some queries against the final state.
    index = RankIndex(live.dataset, live.result.by_id())
    print("\nglobal top-5:")
    for entry in index.top(5):
        print(f"  {entry.rank}. [{entry.year}] {entry.title} "
              f"(p{index.percentile(entry.article_id) * 100:.1f})")
    venue_id = next(iter(live.dataset.venues))
    venue_name = live.dataset.venues[venue_id].name
    print(f"\ntop-3 within {venue_name}:")
    for entry in index.top(3, venue_id=venue_id):
        print(f"  {entry.rank}. [{entry.year}] {entry.title}")

    # Checkpoint, "restart", verify the revived engine agrees.
    checkpoint = Path(tempfile.gettempdir()) / "live_service_ckpt"
    save_engine(live._engine, checkpoint)
    revived = load_engine(checkpoint)
    drift = abs(revived.scores - live._engine.scores).max()
    print(f"\ncheckpoint round-trip: {revived.graph.num_nodes} articles, "
          f"max score drift {drift:.1e}")


if __name__ == "__main__":
    main()
