"""Quickstart: generate a scholarly corpus, rank it, inspect the result.

Run:  python examples/quickstart.py
"""

from repro import ArticleRanker, GeneratorConfig, generate_dataset


def main() -> None:
    # A 10k-article synthetic corpus with the structural properties of a
    # real citation network (power-law citations, yearly growth, venues,
    # authors, planted latent quality).
    dataset = generate_dataset(GeneratorConfig(
        num_articles=10_000, num_venues=40, num_authors=3_000,
        start_year=1990, end_year=2015, seed=42))
    print(f"corpus: {dataset.num_articles} articles, "
          f"{dataset.num_citations} citations, "
          f"{dataset.num_venues} venues, {dataset.num_authors} authors")

    # Rank every article, query-independently.
    result = ArticleRanker().rank(dataset)

    print("\ntop 10 articles (score | year | venue | title):")
    for article_id, score in result.top(10):
        article = dataset.articles[article_id]
        venue = dataset.venues[article.venue_id].name
        print(f"  {score:.4f} | {article.year} | {venue:>9} | "
              f"{article.title}")

    diag = result.diagnostics
    print(f"\nTWPR solved by {diag['twpr_method']!r} in "
          f"{diag['twpr_iterations']} sweep(s); stage timings (s):")
    for stage, seconds in diag["timings"].items():
        print(f"  {stage:>18}: {seconds:.4f}")

    # Every intermediate signal is exposed for analysis.
    prestige = result.components["article_prestige"]
    popularity = result.components["article_popularity"]
    print(f"\nprestige mass on top-100: "
          f"{sorted(prestige, reverse=True)[:100][-1]:.2e} cutoff; "
          f"max popularity {popularity.max():.2f}")


if __name__ == "__main__":
    main()
