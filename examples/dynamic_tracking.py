"""Dynamic ranking: maintain article prestige as yearly batches arrive.

Simulates the production scenario the paper's incremental algorithm
targets — a live scholarly index ingesting each publication year — and
compares the maintained scores against cold batch recomputes.

Run:  python examples/dynamic_tracking.py
"""

import time

import numpy as np

from repro import GeneratorConfig, IncrementalEngine, generate_dataset
from repro.core.twpr import time_weighted_pagerank
from repro.engine.updates import yearly_updates


def main() -> None:
    dataset = generate_dataset(GeneratorConfig(
        num_articles=15_000, num_venues=40, num_authors=4_000,
        start_year=1995, end_year=2015, seed=7))
    _, max_year = dataset.year_range()

    # Bootstrap on everything up to five years before the horizon, then
    # stream one yearly arrival batch at a time.
    base, batches = yearly_updates(dataset, max_year - 4)
    print(f"bootstrap: {base.num_articles} articles; streaming "
          f"{len(batches)} yearly batches "
          f"({sum(b.num_articles for b in batches)} articles)")

    engine = IncrementalEngine(base, delta_threshold=1e-3)
    print(f"\n{'year':>6} {'new':>6} {'affected':>9} {'incr ms':>8} "
          f"{'batch ms':>9} {'L1 error':>9}")
    for batch in batches:
        year = batch.articles[0].year
        report = engine.apply(batch)

        # Fair batch comparator: rebuild the graph from the dataset and
        # solve cold — what a non-incremental system does per arrival.
        start = time.perf_counter()
        graph = engine.dataset.citation_csr()
        years = engine.dataset.article_years(graph)
        exact = time_weighted_pagerank(graph, years,
                                       decay=engine.decay).scores
        batch_ms = (time.perf_counter() - start) * 1e3
        error = float(np.abs(engine.scores - exact).sum())
        print(f"{year:>6} {batch.num_articles:>6} "
              f"{report.affected.fraction * 100:>8.1f}% "
              f"{report.seconds * 1e3:>8.0f} {batch_ms:>9.0f} "
              f"{error:>9.1e}")

    scores = engine.scores_by_id()
    top = sorted(scores, key=lambda i: -scores[i])[:5]
    print("\nmost prestigious articles after the stream:")
    for article_id in top:
        article = engine.dataset.articles[article_id]
        print(f"  {scores[article_id]:.2e}  [{article.year}] "
              f"{article.title}")


if __name__ == "__main__":
    main()
